"""Soundness of the derived theorems (2–15) at random instantiations.

Every rule constructor's conclusion must be oracle-implied by its premises
— the executable counterpart of the paper's derivations.
"""
from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attrs import AttrList, attrlist
from repro.core.axioms import InvalidRuleApplication
from repro.core.dependency import OrderDependency, compat, equiv, od
from repro.core.inference import ODTheory, implies
from repro.core.theorems import (
    augmentation,
    compat_facet,
    compose,
    decomposition,
    downward_closure,
    drop,
    eliminate,
    fd_facet,
    front_replace,
    left_eliminate,
    normalize_statement,
    partition,
    path,
    permutation,
    replace,
    shift,
    union,
)

NAMES = ("A", "B", "C", "D", "E")
side = st.lists(st.sampled_from(NAMES), max_size=2, unique=True).map(AttrList)


def sound(premises, conclusion):
    assert ODTheory(tuple(premises)).implies(conclusion), (
        f"{premises} do not imply {conclusion}"
    )


class TestUnion:
    @given(side, side, side)
    def test_sound(self, x, y, z):
        p1, p2 = od(x, y), od(x, z)
        sound([p1, p2], union(p1, p2))

    def test_shape(self):
        assert union(od("A", "B"), od("A", "C")) == od("A", "B,C")

    def test_lhs_mismatch(self):
        with pytest.raises(InvalidRuleApplication):
            union(od("A", "B"), od("B", "C"))


class TestAugmentation:
    @given(side, side, side)
    def test_sound(self, x, y, z):
        p = od(x, y)
        sound([p], augmentation(p, z))

    def test_shape(self):
        assert augmentation(od("A", "B"), attrlist("C")) == od("A,C", "B")


class TestFrontReplaceAndShift:
    @given(side, side, side)
    def test_front_replace_sound(self, x, y, w):
        p = equiv(x, y)
        sound([p], front_replace(p, w))

    @given(side, side, side, side)
    def test_shift_sound(self, x, y, v, w):
        p1, p2 = equiv(x, y), od(v, w)
        sound([p1, p2], shift(p1, p2))

    def test_shift_shape(self):
        assert shift(equiv("A", "B"), od("C", "D")) == od("A,C", "B,D")


class TestDecomposition:
    @given(side, side, side)
    def test_sound(self, x, y, z):
        p = od(x, y + z)
        sound([p], decomposition(p, y))

    def test_requires_prefix(self):
        with pytest.raises(InvalidRuleApplication):
            decomposition(od("A", "B,C"), attrlist("C"))


class TestReplace:
    @given(side, side, side, side)
    def test_sound(self, x, y, z, w):
        p = equiv(x, y)
        sound([p], replace(p, z, w))

    def test_shape(self):
        assert replace(equiv("A", "B"), attrlist("Z"), attrlist("W")) == equiv(
            "Z,A,W", "Z,B,W"
        )


class TestEliminate:
    @given(side, side, side, side, side)
    @settings(max_examples=60)
    def test_sound(self, x, y, w, v, u):
        p = od(x, y)
        sound([p], eliminate(p, w, v, u))

    def test_example1_groupby(self):
        # month |-> quarter: [year, month, quarter] <-> [year, month]
        conclusion = eliminate(
            od("d_moy", "d_qoy"), attrlist("d_year"), attrlist(""), attrlist("")
        )
        assert conclusion == equiv("d_year,d_moy,d_qoy", "d_year,d_moy")


class TestLeftEliminate:
    @given(side, side, side, side)
    def test_sound(self, x, y, z, w):
        p = od(x, y)
        sound([p], left_eliminate(p, z, w))

    def test_example1_orderby(self):
        # the paper's headline: [year, quarter, month] <-> [year, month]
        conclusion = left_eliminate(
            od("d_moy", "d_qoy"), attrlist("d_year"), attrlist("")
        )
        assert conclusion == equiv("d_year,d_qoy,d_moy", "d_year,d_moy")

    def test_adjacency_requirement(self):
        """The paper's ABD/ABCD example: given D |-> B, [A,B,D] reduces to
        [A,D] but [A,B,C,D] does NOT reduce to [A,C,D] or [A,D]."""
        premises = [od("D", "B")]
        assert implies(premises, equiv("A,B,D", "A,D"))
        assert not implies(premises, equiv("A,B,C,D", "A,C,D"))
        assert not implies(premises, equiv("A,B,C,D", "A,D"))


class TestDropAndPath:
    @given(side, side, side, side)
    @settings(max_examples=60)
    def test_drop_sound(self, x, v, u, t):
        p1, p2 = od(x, v + u + t), od(v, u)
        sound([p1, p2], drop(p1, p2))

    def test_drop_shape(self):
        assert drop(od("X", "V,U,T"), od("V", "U")) == od("X", "V,T")

    def test_drop_requires_factorization(self):
        with pytest.raises(InvalidRuleApplication):
            drop(od("X", "A,B"), od("C", "D"))

    @given(side, side, side, side)
    @settings(max_examples=60)
    def test_path_sound(self, x, u, v, t):
        p1, p2 = od(x, u + t), od(u, v)
        sound([p1, p2], path(p1, p2))

    def test_path_example4(self):
        """Example 4 / Figure 2: insert an implied refinement mid-list."""
        p1 = od("d_date", "d_year,d_doy")
        p2 = od("d_year", "century")
        assert path(p1, p2) == od("d_date", "d_year,century,d_doy")
        sound([p1, p2], path(p1, p2))


class TestPartition:
    def test_sound_and_shape(self):
        p1, p2 = od("Z", "A,B"), od("Z", "B,A")
        conclusion = partition(p1, p2)
        assert conclusion == equiv("A,B", "B,A")
        sound([p1, p2], conclusion)

    @given(side, side)
    def test_sound_random(self, z, x):
        import random

        y = AttrList(random.Random(42).sample(list(x), len(x)))
        p1, p2 = od(z, x), od(z, y)
        sound([p1, p2], partition(p1, p2))

    def test_set_mismatch(self):
        with pytest.raises(InvalidRuleApplication):
            partition(od("Z", "A"), od("Z", "B"))


class TestDownwardClosure:
    @given(side, side, side)
    def test_sound(self, x, y, z):
        p = compat(x, y + z)
        sound([p], downward_closure(p, y))

    def test_shape(self):
        assert downward_closure(compat("A", "B,C"), attrlist("B")) == compat("A", "B")


class TestPermutation:
    def test_fd_facets_permute(self):
        p = od("A,B", "A,B,C")
        conclusion = permutation(p, attrlist("B,A"), attrlist("C"))
        assert conclusion == od("B,A", "B,A,C")
        sound([p], conclusion)

    def test_rejects_non_facet(self):
        with pytest.raises(InvalidRuleApplication):
            permutation(od("A", "C"), attrlist("A"), attrlist("C"))

    def test_rejects_non_permutation(self):
        with pytest.raises(InvalidRuleApplication):
            permutation(od("A", "A,B"), attrlist("A"), attrlist("C"))


class TestTheorem15:
    @given(side, side)
    def test_facets_sound(self, x, y):
        p = od(x, y)
        sound([p], fd_facet(p))
        sound([p], compat_facet(p))

    @given(side, side)
    def test_compose_sound(self, x, y):
        p1 = od(x, x + y)
        p2 = compat(x, y)
        sound([p1, p2], compose(p1, p2))

    def test_compose_validates_facet(self):
        with pytest.raises(InvalidRuleApplication):
            compose(od("A", "B"), compat("A", "B"))

    @given(side, side)
    def test_iff_at_oracle_level(self, x, y):
        """X |-> Y is implied iff both facets are — Theorem 15 as an
        oracle-level identity with no premises."""
        goal = od(x, y)
        facets = [goal.fd_facet(), compat(x, y)]
        assert implies(facets, goal)
        assert implies([goal], facets[0]) and implies([goal], facets[1])


class TestNormalizeMacro:
    def test_od(self):
        assert normalize_statement(od("A,B,A", "C,C")) == od("A,B", "C")

    def test_equiv_and_compat(self):
        assert normalize_statement(equiv("A,A", "B")) == equiv("A", "B")
        assert normalize_statement(compat("A,A", "B")) == compat("A", "B")

    @given(st.lists(st.sampled_from(NAMES), max_size=4).map(AttrList),
           st.lists(st.sampled_from(NAMES), max_size=4).map(AttrList))
    def test_sound(self, x, y):
        p = od(x, y)
        sound([p], normalize_statement(p))
        sound([normalize_statement(p)], p)

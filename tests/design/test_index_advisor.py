"""OD-aware index advice: key minimization, subsumption, recommendation."""
from __future__ import annotations

import pytest

from repro.core.dependency import equiv, fd, od
from repro.core.inference import ODTheory
from repro.design.index_advisor import (
    minimize_index_key,
    order_subsumes,
    recommend_key,
    subsumed_indexes,
)

#: the date-warehouse knowledge base
THEORY = ODTheory(
    [
        equiv("sk", "dt"),
        od("dt", "year,moy,dom"),
        od("moy", "qoy"),
        fd("moy", "qoy"),
    ]
)


class TestMinimize:
    def test_drops_order_redundant_column(self):
        assert minimize_index_key(THEORY, ["year", "qoy", "moy", "dom"]) == (
            "year", "moy", "dom",
        )

    def test_keeps_necessary_columns(self):
        assert minimize_index_key(THEORY, ["year", "moy"]) == ("year", "moy")

    def test_surrogate_collapses_hierarchy(self):
        # sk orders the whole hierarchy: everything after it drops
        assert minimize_index_key(THEORY, ["sk", "year", "moy", "dom"]) == ("sk",)

    def test_preserves_order_equivalence(self):
        key = ["year", "qoy", "moy", "dom"]
        minimized = minimize_index_key(THEORY, key)
        assert THEORY.implies(equiv(list(key), list(minimized)))


class TestSubsumption:
    def test_sk_subsumes_hierarchy_index(self):
        assert order_subsumes(THEORY, ["sk"], ["year", "qoy", "moy"])

    def test_not_conversely(self):
        assert not order_subsumes(THEORY, ["year", "moy"], ["sk"])

    def test_advice_flags_droppable(self):
        advice = subsumed_indexes(
            THEORY,
            {
                "idx_sk": ["sk"],
                "idx_ymd": ["year", "moy", "dom"],
                "idx_yqm": ["year", "qoy", "moy"],
            },
        )
        by_name = {a.name: a for a in advice}
        # dt <-> sk orders the full hierarchy, so both derived indexes drop
        assert by_name["idx_ymd"].droppable
        assert by_name["idx_yqm"].droppable
        assert not by_name["idx_sk"].droppable

    def test_mutual_subsumption_keeps_one(self):
        theory = ODTheory([equiv("a", "b")])
        advice = subsumed_indexes(theory, {"i1": ["a"], "i2": ["b"]})
        droppable = [a.name for a in advice if a.droppable]
        assert len(droppable) == 1

    def test_describe(self):
        advice = subsumed_indexes(THEORY, {"only": ["year", "qoy", "moy"]})
        assert "narrow" in advice[0].describe()


class TestRecommend:
    def test_single_order(self):
        assert recommend_key(THEORY, [["year", "qoy", "moy"]]) == ("year", "moy")

    def test_prefix_merged(self):
        key = recommend_key(THEORY, [["year"], ["year", "moy"], ["year", "moy", "dom"]])
        assert key == ("year", "moy", "dom")

    def test_equivalent_requests_merge(self):
        key = recommend_key(THEORY, [["year", "qoy", "moy"], ["year", "moy"]])
        assert key == ("year", "moy")

    def test_empty(self):
        assert recommend_key(THEORY, []) == ()
        assert recommend_key(ODTheory([od("", "k")]), [["k"]]) == ()

    def test_recommended_key_covers_requests(self):
        requests = [["year", "moy"], ["year", "qoy", "moy", "dom"]]
        key = recommend_key(THEORY, requests)
        for request in requests:
            assert order_subsumes(THEORY, key, request)

"""Normalization: BCNF analysis/decomposition and 3NF synthesis."""
from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dependency import FunctionalDependency, fd
from repro.design.normalize import (
    bcnf_decompose,
    is_bcnf,
    is_lossless_binary,
    synthesize_3nf,
    violating_fds,
)
from repro.fd.closure import attribute_closure, candidate_keys, is_superkey
from repro.fd.cover import equivalent_covers

NAMES = ("A", "B", "C", "D")
sides = st.lists(st.sampled_from(NAMES), min_size=1, max_size=2, unique=True)
fds_st = st.builds(FunctionalDependency, sides, sides)


class TestViolations:
    def test_classic_offender(self):
        schema = ("A", "B", "C")
        premises = [fd("A", "B,C"), fd("B", "C")]
        offenders = violating_fds(schema, premises)
        assert fd("B", "C") in offenders
        assert fd("A", "B,C") not in offenders

    def test_bcnf_positive(self):
        assert is_bcnf(("A", "B"), [fd("A", "B")])

    def test_bcnf_negative(self):
        assert not is_bcnf(("A", "B", "C"), [fd("A", "B,C"), fd("B", "C")])

    def test_hidden_projected_violation(self):
        """A violation only visible through projected FDs is still found."""
        schema = ("A", "B", "C")
        premises = [fd("A", "B"), fd("B", "C")]
        assert not is_bcnf(schema, premises)  # B -> C violates


class TestBcnfDecompose:
    def test_textbook_example(self):
        schema = ("A", "B", "C")
        premises = [fd("A", "B,C"), fd("B", "C")]
        fragments = bcnf_decompose(schema, premises)
        assert frozenset({"B", "C"}) in fragments
        assert frozenset({"A", "B"}) in fragments

    def test_fragments_are_bcnf(self):
        schema = ("A", "B", "C", "D")
        premises = [fd("A", "B"), fd("B", "C")]
        for fragment in bcnf_decompose(schema, premises):
            assert is_bcnf(sorted(fragment), premises)

    def test_covers_schema(self):
        schema = ("A", "B", "C", "D")
        premises = [fd("A", "B"), fd("C", "D")]
        fragments = bcnf_decompose(schema, premises)
        assert set().union(*fragments) == set(schema)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(fds_st, max_size=3))
    def test_random_schemas(self, premises):
        fragments = bcnf_decompose(NAMES, premises)
        assert set().union(*fragments) == set(NAMES)
        for fragment in fragments:
            assert is_bcnf(sorted(fragment), premises)


class TestSynthesize3NF:
    def test_groups_by_determinant(self):
        premises = [fd("A", "B"), fd("A", "C"), fd("D", "A")]
        relations = synthesize_3nf(("A", "B", "C", "D"), premises)
        attribute_sets = {relation.attributes for relation in relations}
        assert frozenset({"A", "B", "C"}) in attribute_sets
        assert frozenset({"D", "A"}) in attribute_sets

    def test_key_relation_added(self):
        # no FD mentions D: a key relation containing D must appear
        premises = [fd("A", "B")]
        relations = synthesize_3nf(("A", "B", "D"), premises)
        assert any("D" in relation.attributes for relation in relations)

    def test_dependency_preserving(self):
        premises = [fd("A", "B"), fd("B", "C"), fd("C", "A")]
        relations = synthesize_3nf(("A", "B", "C"), premises)
        embedded = [f for relation in relations for f in relation.fds]
        assert equivalent_covers(premises, embedded)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(fds_st, min_size=1, max_size=3))
    def test_some_fragment_contains_a_key(self, premises):
        relations = synthesize_3nf(NAMES, premises)
        keys = candidate_keys(NAMES, premises)
        assert any(
            any(key <= relation.attributes for relation in relations)
            for key in keys
        )


class TestLosslessJoin:
    def test_positive(self):
        premises = [fd("B", "C")]
        assert is_lossless_binary(
            ("A", "B", "C"), frozenset({"B", "C"}), frozenset({"A", "B"}), premises
        )

    def test_negative(self):
        assert not is_lossless_binary(
            ("A", "B", "C"), frozenset({"A", "B"}), frozenset({"B", "C"}), []
        )

    def test_must_cover_schema(self):
        assert not is_lossless_binary(
            ("A", "B", "C"), frozenset({"A"}), frozenset({"B"}), []
        )

    def test_bcnf_split_is_lossless(self):
        schema = ("A", "B", "C")
        premises = [fd("A", "B,C"), fd("B", "C")]
        fragments = bcnf_decompose(schema, premises)
        if len(fragments) == 2:
            assert is_lossless_binary(schema, fragments[0], fragments[1], premises)

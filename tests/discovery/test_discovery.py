"""Dependency discovery: planted dependencies recovered, discoveries valid."""
from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attrs import AttrList, attrlist
from repro.core.dependency import FunctionalDependency, compat, od
from repro.core.relation import Relation
from repro.core.satisfaction import satisfies
from repro.discovery import (
    compose_rhs,
    discover_compatibilities,
    discover_constants,
    discover_fds,
    discover_ods,
)


def monotone_relation(rows=30, seed=3):
    """A table with planted structure: B = 2A, C = A // 3, D random, K const."""
    rng = random.Random(seed)
    data = []
    for _ in range(rows):
        a = rng.randint(0, 20)
        data.append((a, 2 * a, a // 3, rng.randint(0, 5), 7))
    return Relation(attrlist("A,B,C,D,K"), data)


class TestConstants:
    def test_found(self):
        r = monotone_relation()
        assert "K" in discover_constants(r)

    def test_not_overreported(self):
        r = monotone_relation()
        assert "A" not in discover_constants(r)

    def test_empty_relation(self):
        r = Relation(attrlist("A"), [])
        assert discover_constants(r) == {"A"}


class TestFdDiscovery:
    def test_planted_fds_found(self):
        r = monotone_relation()
        found = discover_fds(r, max_lhs=1)
        assert FunctionalDependency(("A",), ("B",)) in found
        assert FunctionalDependency(("A",), ("C",)) in found
        assert FunctionalDependency(("B",), ("A",)) in found  # B=2A is injective

    def test_all_discovered_hold(self):
        r = monotone_relation()
        for dependency in discover_fds(r, max_lhs=2):
            assert satisfies(r, dependency)

    def test_minimality(self):
        r = monotone_relation()
        found = discover_fds(r, max_lhs=2)
        # A -> B is minimal, so {A, D} -> B must not be reported
        assert FunctionalDependency(("A", "D"), ("B",)) not in found

    @settings(max_examples=30, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 3)),
        max_size=12,
    ))
    def test_soundness_on_random_data(self, rows):
        r = Relation(attrlist("A,B,C"), rows)
        for dependency in discover_fds(r, max_lhs=2):
            assert satisfies(r, dependency)


class TestCompatibilities:
    def test_monotone_pair_compatible(self):
        r = monotone_relation()
        found = discover_compatibilities(r)
        assert compat("A", "B") in found or compat("B", "A") in found

    def test_swapping_pair_not_compatible(self):
        r = Relation(attrlist("A,B"), [(1, 2), (2, 1)])
        assert discover_compatibilities(r) == []


class TestOdDiscovery:
    def test_planted_ods_found(self):
        r = monotone_relation()
        result = discover_ods(r, max_lhs=1)
        assert od("A", "B") in result.ods
        assert od("A", "C") in result.ods

    def test_constant_reported_as_empty_lhs(self):
        r = monotone_relation()
        result = discover_ods(r, max_lhs=1)
        assert od("", "K") in result.ods

    def test_all_discovered_hold(self):
        r = monotone_relation(rows=25)
        result = discover_ods(r, max_lhs=2)
        for dependency in result.ods:
            assert satisfies(r, dependency)
        for compatibility in result.compatibilities:
            assert satisfies(r, compatibility)

    def test_minimality_pruning(self):
        """[A] |-> [B] valid means [A, X] |-> [B] is never reported."""
        r = monotone_relation()
        result = discover_ods(r, max_lhs=2)
        for dependency in result.ods:
            if tuple(dependency.rhs) == ("B",) and len(dependency.lhs) == 2:
                assert dependency.lhs[0] != "A"

    def test_summary(self):
        result = discover_ods(monotone_relation(), max_lhs=1)
        assert "minimal ODs" in result.summary()

    def test_statements_feed_theory(self):
        from repro.core.inference import ODTheory

        result = discover_ods(monotone_relation(), max_lhs=1)
        theory = ODTheory(result.statements())
        # discovered A |-> B and A |-> C compose
        assert theory.implies(od("A", "B,C"))


class TestComposeRhs:
    def test_grows_maximal_list(self):
        r = monotone_relation()
        grown = compose_rhs(r, attrlist("A"), ["B", "C", "D"])
        assert "B" in grown and "C" in grown and "D" not in grown

    def test_respects_order_sensitivity(self):
        rows = [(1, 1, 1), (2, 1, 2), (3, 2, 1)]
        r = Relation(attrlist("A,B,C"), rows)
        grown = compose_rhs(r, attrlist("A"), ["B", "C"])
        # A orders B; appending C after B must only stay if valid
        assert satisfies(r, od("A", list(grown)))


class TestDiscoverOnWorkloads:
    def test_datedim_recovers_figure2(self):
        from repro.workloads.datedim import generate_date_dim

        table = generate_date_dim(days=400)
        relation = table.as_relation()
        result = discover_ods(relation, max_lhs=1, max_fd_lhs=1)
        assert od("d_date", "d_year") in result.ods
        assert od("d_date_sk", "d_date") in result.ods
        assert od("d_moy", "d_qoy") in result.ods
        # and the reverse equivalence sk <-> date
        assert (attrlist("d_date_sk"), attrlist("d_date")) in result.equivalences or (
            attrlist("d_date"), attrlist("d_date_sk")
        ) in result.equivalences

    def test_taxes_recovers_example5(self):
        from repro.workloads.taxes import generate_taxes, taxes_schema
        from repro.engine.table import Table

        table = Table("taxes", taxes_schema())
        table.load(generate_taxes(rows=300), check=False)
        relation = table.as_relation()
        result = discover_ods(relation, max_lhs=1, max_fd_lhs=1)
        assert od("income", "bracket") in result.ods
        assert od("income", "payable") in result.ods

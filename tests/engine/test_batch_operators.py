"""The vectorized execution mode's contracts.

Three things are gated here, operator by operator:

* **bit-identical results** — ``run_batches(N)`` must reproduce
  ``run()`` exactly (same tuples, same order, same float bits) at
  boundary batch sizes (1, a small odd size, larger than the input);
* **metrics parity** — batch-mode counter *totals* equal the row path's
  per-row charges (the per-batch charging satellite);
* **order conformance on random instances** — ``execute_batches`` output
  respects the operator's declared :class:`OrderSpec` (property test,
  hypothesis-driven row data).

Plus the building blocks: :class:`ColumnBatch` structural operations and
the fused vectorized expression kernels against their row-mode closures.
"""
from __future__ import annotations

import datetime
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.batch import (
    DEFAULT_BATCH_SIZE,
    ColumnBatch,
    batches_from_rows,
    rows_from_batches,
)
from repro.engine.database import Database
from repro.engine.expr import (
    Arith,
    Between,
    BoolOp,
    Cmp,
    Col,
    Func,
    InList,
    Lit,
    Not,
    vectorized_kernel,
)
from repro.engine.index import SortedIndex
from repro.engine.operators import (
    AggSpec,
    Filter,
    HashAggregate,
    HashDistinct,
    HashJoin,
    IndexScan,
    Limit,
    MergeJoin,
    NestedLoopJoin,
    Project,
    SeqScan,
    Sort,
    SortedDistinct,
    StreamAggregate,
    TopN,
)
from repro.engine.schema import Schema
from repro.engine.table import Table
from repro.engine.types import DataType

BATCH_SIZES = (1, 7, 64, 4096)


def make_table(rows, name="t"):
    table = Table(
        name,
        Schema.of(("a", DataType.INT), ("b", DataType.INT), ("c", DataType.FLOAT)),
    )
    table.load(rows, check=False)
    return table


def random_rows(seed, n=120):
    rng = random.Random(seed)
    return [
        (rng.randint(0, 9), rng.randint(0, 9), round(rng.random() * 100, 3))
        for _ in range(n)
    ]


def assert_modes_agree(build_op):
    """Row and batch execution must agree on rows AND counter totals.

    ``build_op`` is a factory — a fresh operator tree per execution, so
    stateful operators can't leak between runs.
    """
    rows, metrics = build_op().run()
    for batch_size in BATCH_SIZES:
        batch_rows, batch_metrics = build_op().run_batches(batch_size)
        assert batch_rows == rows, f"batch_size={batch_size}: rows differ"
        assert batch_metrics.counters == metrics.counters, (
            f"batch_size={batch_size}: counters differ "
            f"({batch_metrics.counters} vs {metrics.counters})"
        )
    return rows, metrics


# ----------------------------------------------------------------------
# ColumnBatch structural operations
# ----------------------------------------------------------------------
class TestColumnBatch:
    SCHEMA = Schema.of(("x", DataType.INT), ("y", DataType.STR))
    ROWS = [(1, "a"), (2, "b"), (3, "c"), (4, "d")]

    def test_from_rows_roundtrip(self):
        batch = ColumnBatch.from_rows(self.SCHEMA, self.ROWS)
        assert len(batch) == 4
        assert batch.to_rows() == self.ROWS
        assert list(batch.column("y")) == ["a", "b", "c", "d"]

    def test_empty(self):
        batch = ColumnBatch.from_rows(self.SCHEMA, [])
        assert len(batch) == 0
        assert batch.to_rows() == []
        assert len(batch.columns) == len(self.SCHEMA)

    def test_filter(self):
        batch = ColumnBatch.from_rows(self.SCHEMA, self.ROWS)
        kept = batch.filter([True, False, True, False])
        assert kept.to_rows() == [(1, "a"), (3, "c")]
        assert len(kept) == 2

    def test_slice(self):
        batch = ColumnBatch.from_rows(self.SCHEMA, self.ROWS)
        assert batch.slice(1, 3).to_rows() == [(2, "b"), (3, "c")]
        assert batch.slice(3, 99).to_rows() == [(4, "d")]

    def test_take(self):
        batch = ColumnBatch.from_rows(self.SCHEMA, self.ROWS)
        assert batch.take([3, 0]).to_rows() == [(4, "d"), (1, "a")]

    def test_concat(self):
        first = ColumnBatch.from_rows(self.SCHEMA, self.ROWS[:2])
        second = ColumnBatch.from_rows(self.SCHEMA, self.ROWS[2:])
        assert ColumnBatch.concat([first, second]).to_rows() == self.ROWS
        with pytest.raises(ValueError):
            ColumnBatch.concat([])

    def test_adapters(self):
        batches = list(batches_from_rows(self.SCHEMA, iter(self.ROWS), 3))
        assert [len(b) for b in batches] == [3, 1]
        assert list(rows_from_batches(batches)) == self.ROWS


# ----------------------------------------------------------------------
# Vectorized kernels vs row closures
# ----------------------------------------------------------------------
EXPR_SCHEMA = Schema.of(
    ("a", DataType.INT), ("b", DataType.FLOAT), ("d", DataType.DATE)
)

EXPRESSIONS = [
    Cmp("<=", Col("a"), Lit(5)),
    Cmp("<>", Col("a"), Col("a")),
    Cmp("=", Arith("%", Col("a"), Lit(3)), Lit(0)),
    Between(Col("b"), Lit(10.0), Lit(60.0)),
    BoolOp("AND", [Cmp(">", Col("a"), Lit(2)), Cmp("<", Col("b"), Lit(50.0))]),
    BoolOp("OR", [Cmp("=", Col("a"), Lit(0)), Not(Cmp("<", Col("b"), Lit(90.0)))]),
    InList(Col("a"), [1, 3, 5, 7]),
    Func("YEAR", [Col("d")]),
    Func("QUARTER", [Col("d")]),
    Arith("*", Arith("+", Col("a"), Lit(1)), Col("b")),
    Lit(42),
    Col("b"),
]


@pytest.mark.parametrize("expr", EXPRESSIONS, ids=[e.render() for e in EXPRESSIONS])
@given(data=st.lists(
    st.tuples(
        st.integers(min_value=-10, max_value=10),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        st.dates(
            min_value=datetime.date(1990, 1, 1), max_value=datetime.date(2030, 12, 31)
        ),
    ),
    max_size=40,
))
@settings(max_examples=25, deadline=None)
def test_kernel_matches_row_closure(expr, data):
    """The fused kernel must agree element-for-element (value *and* type)
    with row-at-a-time evaluation on arbitrary rows."""
    row_fn = expr.compile_against(EXPR_SCHEMA)
    kernel = vectorized_kernel(expr, EXPR_SCHEMA)
    columns = [list(col) for col in zip(*data)] if data else [[], [], []]
    vector = kernel(columns, len(data))
    expected = [row_fn(row) for row in data]
    assert list(vector) == expected
    assert [type(v) for v in vector] == [type(e) for e in expected]


def test_kernel_is_cached_per_expression():
    first = vectorized_kernel(Cmp("<", Col("a"), Lit(3)), EXPR_SCHEMA)
    second = vectorized_kernel(Cmp("<", Col("a"), Lit(3)), EXPR_SCHEMA)
    assert first is second
    other_schema = Schema.of(("z", DataType.INT), ("a", DataType.INT))
    assert vectorized_kernel(Cmp("<", Col("a"), Lit(3)), other_schema) is not first


def test_kernel_cache_distinguishes_literal_types():
    """Lit(1) == Lit(1.0) == Lit(True) under dataclass equality, but their
    kernels bake different reprs — the cache key must not conflate them."""
    columns = [[1, 2, 3], [], []]
    int_kernel = vectorized_kernel(Arith("+", Col("a"), Lit(1)), EXPR_SCHEMA)
    float_kernel = vectorized_kernel(Arith("+", Col("a"), Lit(1.0)), EXPR_SCHEMA)
    bool_kernel = vectorized_kernel(Arith("+", Col("a"), Lit(True)), EXPR_SCHEMA)
    assert int_kernel(columns, 3) == [2, 3, 4]
    assert [type(v) for v in float_kernel(columns, 3)] == [float] * 3
    assert bool_kernel(columns, 3) == [2, 3, 4]
    # IN-list values are part of the signature too
    int_in = vectorized_kernel(InList(Col("a"), [1, 2]), EXPR_SCHEMA)
    assert int_in(columns, 3) == [True, True, False]


# ----------------------------------------------------------------------
# Per-operator mode parity (rows + metrics totals)
# ----------------------------------------------------------------------
class TestOperatorModeParity:
    @pytest.fixture(params=[3, 17, 2024])
    def table(self, request):
        return make_table(random_rows(request.param))

    @pytest.fixture
    def dim(self):
        dim = Table("dim", Schema.of(("k", DataType.INT), ("label", DataType.STR)))
        dim.load([(i, f"k{i}") for i in range(10)], check=False)
        return dim

    def test_seq_scan(self, table):
        _, metrics = assert_modes_agree(lambda: SeqScan(table))
        assert metrics.get("rows_scanned") == len(table)

    def test_seq_scan_empty_table(self):
        assert_modes_agree(lambda: SeqScan(make_table([])))

    def test_index_scan(self, table):
        index = SortedIndex("t_ab", table, ["a", "b"]).build()
        assert_modes_agree(lambda: IndexScan(index))

    def test_index_scan_bounded(self, table):
        index = SortedIndex("t_a", table, ["a"]).build()
        assert_modes_agree(lambda: IndexScan(index, low=(2,), high=(6,)))

    def test_filter(self, table):
        predicate = BoolOp(
            "AND",
            [Cmp(">=", Col("a"), Lit(2)), Cmp("<", Col("c"), Lit(80.0))],
        )
        assert_modes_agree(lambda: Filter(SeqScan(table), predicate))

    def test_filter_none_pass(self, table):
        assert_modes_agree(
            lambda: Filter(SeqScan(table), Cmp(">", Col("a"), Lit(99)))
        )

    def test_project(self, table):
        assert_modes_agree(
            lambda: Project(
                SeqScan(table),
                [Col("t.a"), Arith("+", Col("t.b"), Lit(100)), Col("t.c")],
                ["a", "shifted", "c"],
            )
        )

    def test_limit_exact_early_termination(self, table):
        """Limit runs its subtree in row mode: the child must charge for
        exactly as many rows as the row path pulls, not whole batches."""
        assert_modes_agree(lambda: Limit(SeqScan(table), 10))

    def test_sort(self, table):
        assert_modes_agree(lambda: Sort(SeqScan(table), ["t.b", "t.c"]))

    def test_topn(self, table):
        assert_modes_agree(lambda: TopN(SeqScan(table), ["t.c"], 11))

    def test_topn_zero(self, table):
        _, metrics = assert_modes_agree(lambda: TopN(SeqScan(table), ["t.c"], 0))
        assert metrics.counters == {}  # child never touched in either mode

    def test_hash_distinct(self, table):
        assert_modes_agree(
            lambda: HashDistinct(Project(SeqScan(table), [Col("t.a")], ["a"]))
        )

    def test_sorted_distinct(self, table):
        assert_modes_agree(
            lambda: SortedDistinct(
                Project(Sort(SeqScan(table), ["t.a", "t.b"]),
                        [Col("t.a"), Col("t.b")], ["a", "b"])
            )
        )

    def test_hash_join(self, table, dim):
        assert_modes_agree(
            lambda: HashJoin(SeqScan(table), SeqScan(dim), ["t.a"], ["dim.k"])
        )

    def test_hash_join_multi_key(self, table):
        other = make_table(random_rows(99, 50), name="u")
        assert_modes_agree(
            lambda: HashJoin(
                SeqScan(table), SeqScan(other), ["t.a", "t.b"], ["u.a", "u.b"]
            )
        )

    def test_merge_join(self, table, dim):
        assert_modes_agree(
            lambda: MergeJoin(
                Sort(SeqScan(table), ["t.a"]),
                Sort(SeqScan(dim), ["dim.k"]),
                ["t.a"],
                ["dim.k"],
            )
        )

    def test_nested_loop_join(self, table, dim):
        assert_modes_agree(
            lambda: NestedLoopJoin(SeqScan(table), SeqScan(dim), ["t.a"], ["dim.k"])
        )

    def test_nested_loop_join_empty_right(self, table):
        empty = make_table([], name="u")
        assert_modes_agree(
            lambda: NestedLoopJoin(SeqScan(table), SeqScan(empty), ["t.a"], ["u.a"])
        )

    AGGS = staticmethod(
        lambda: [
            AggSpec("COUNT", None, "n"),
            AggSpec("SUM", Col("c"), "total"),
            AggSpec("AVG", Col("c"), "mean"),
            AggSpec("MIN", Col("b"), "lo"),
            AggSpec("MAX", Col("b"), "hi"),
        ]
    )

    def test_hash_aggregate(self, table):
        assert_modes_agree(lambda: HashAggregate(SeqScan(table), ["a"], self.AGGS()))

    def test_hash_aggregate_multi_group(self, table):
        assert_modes_agree(
            lambda: HashAggregate(SeqScan(table), ["a", "b"], self.AGGS())
        )

    def test_hash_aggregate_global(self, table):
        assert_modes_agree(lambda: HashAggregate(SeqScan(table), [], self.AGGS()))

    def test_hash_aggregate_global_empty_input(self):
        empty = make_table([])
        rows, _ = assert_modes_agree(
            lambda: HashAggregate(SeqScan(empty), [], self.AGGS())
        )
        assert len(rows) == 1  # SQL: global aggregate over zero rows

    def test_stream_aggregate(self, table):
        assert_modes_agree(
            lambda: StreamAggregate(Sort(SeqScan(table), ["t.a"]), ["a"], self.AGGS())
        )

    def test_stream_aggregate_multi_group(self, table):
        assert_modes_agree(
            lambda: StreamAggregate(
                Sort(SeqScan(table), ["t.a", "t.b"]), ["a", "b"], self.AGGS()
            )
        )

    def test_stream_aggregate_global(self, table):
        assert_modes_agree(
            lambda: StreamAggregate(SeqScan(table), [], self.AGGS())
        )

    def test_stream_aggregate_run_spans_batches(self):
        """A single group covering many batches keeps one accumulator."""
        rows = [(1, i, float(i)) for i in range(50)]
        table = make_table(rows)
        assert_modes_agree(
            lambda: StreamAggregate(SeqScan(table), ["a"], self.AGGS())
        )


# ----------------------------------------------------------------------
# Property: execute_batches respects the declared OrderSpec
# ----------------------------------------------------------------------
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    batch_size=st.sampled_from([1, 2, 7, 33, 1024]),
)
@settings(max_examples=30, deadline=None)
def test_batch_streams_respect_declared_order_spec(seed, batch_size):
    """On random instances, every order-declaring operator's batch output
    must be sorted by its declared OrderSpec — the conformance contract
    the planner's property framework rests on, carried batch-to-batch."""
    table = make_table(random_rows(seed, n=80))
    index = SortedIndex("t_ab", table, ["a", "b"]).build()
    dim = Table("dim", Schema.of(("k", DataType.INT), ("v", DataType.INT)))
    dim.load([(i, i * i) for i in range(10)], check=False)
    operators = [
        IndexScan(index),
        Filter(IndexScan(index), Cmp("<=", Col("t.a"), Lit(6))),
        Sort(SeqScan(table), ["t.b", "t.a"]),
        TopN(SeqScan(table), ["t.c"], 13),
        Project(IndexScan(index), [Col("t.a"), Col("t.b")], ["x", "y"]),
        HashJoin(IndexScan(index), SeqScan(dim), ["t.a"], ["dim.k"]),
        MergeJoin(
            Sort(SeqScan(table), ["t.a"]), SeqScan(dim), ["t.a"], ["dim.k"]
        ),
        StreamAggregate(
            IndexScan(index), ["t.a"], [AggSpec("COUNT", None, "n")]
        ),
        SortedDistinct(
            Project(IndexScan(index), [Col("t.a"), Col("t.b")], ["a", "b"])
        ),
    ]
    for op in operators:
        spec = tuple(op.provides())
        assert spec, f"{op.label()} should declare an ordering here"
        positions = [op.schema.position(column) for column in spec]
        rows, _ = op.run_batches(batch_size)
        keys = [tuple(row[p] for p in positions) for row in rows]
        assert keys == sorted(keys), (
            f"{op.label()} batch output violates declared order {spec} "
            f"at batch_size={batch_size}"
        )


# ----------------------------------------------------------------------
# Database-level surface
# ----------------------------------------------------------------------
class TestDatabaseBatchMode:
    @pytest.fixture()
    def database(self):
        database = Database("batchdb")
        table = database.create_table(
            "t", Schema.of(("a", DataType.INT), ("b", DataType.FLOAT))
        )
        rng = random.Random(5)
        table.load(
            [(rng.randint(0, 20), round(rng.random() * 10, 2)) for _ in range(300)]
        )
        database.create_index("t_a", "t", ["a"], clustered=True)
        return database

    SQL = "SELECT a, COUNT(*) AS n, SUM(b) AS s FROM t GROUP BY a ORDER BY a"

    def test_execute_batch_size_matches_row_mode(self, database):
        row = database.execute(self.SQL)
        batch = database.execute(self.SQL, batch_size=32)
        assert batch.rows == row.rows
        assert batch.columns == row.columns
        assert batch.metrics.counters == row.metrics.counters
        assert batch.batch_size == 32 and row.batch_size is None

    def test_execute_rejects_nonpositive_batch_size(self, database):
        with pytest.raises(ValueError):
            database.execute(self.SQL, batch_size=0)

    def test_plan_info_reports_execution_mode(self, database):
        result = database.execute(self.SQL, batch_size=16)
        assert result.plan.plan_info.execution == "vectorized (batch size 16)"
        result = database.execute(self.SQL)
        assert result.plan.plan_info.execution == "row (iterator)"

    def test_explain_reports_execution_mode(self, database):
        verbose = database.explain(self.SQL, verbose=True, batch_size=64)
        assert "execution: vectorized (batch size 64)" in verbose
        verbose = database.explain(self.SQL, verbose=True)
        assert "execution: row (iterator)" in verbose

    def test_cached_plan_serves_both_modes(self, database):
        cold = database.execute(self.SQL)
        warm_batch = database.execute(self.SQL, batch_size=8)
        assert warm_batch.plan is cold.plan  # one memoized tree, two modes
        assert warm_batch.rows == cold.rows


# ----------------------------------------------------------------------
# The batch-charging satellite: per-batch scan counters, identical totals
# ----------------------------------------------------------------------
class TestBatchScanCharging:
    def test_seq_scan_charges_once_per_batch(self):
        table = make_table(random_rows(1, n=100))
        from repro.engine.operators.base import Metrics

        metrics = Metrics()
        batches = list(SeqScan(table).execute_batches(metrics, 32))
        assert [len(b) for b in batches] == [32, 32, 32, 4]
        assert metrics.get("rows_scanned") == 100
        row_metrics = Metrics()
        list(SeqScan(table).execute(row_metrics))
        assert metrics.counters == row_metrics.counters

    def test_index_scan_charges_once_per_batch(self):
        table = make_table(random_rows(2, n=100))
        index = SortedIndex("t_a", table, ["a"]).build()
        from repro.engine.operators.base import Metrics

        metrics = Metrics()
        list(IndexScan(index).execute_batches(metrics, 64))
        assert metrics.get("rows_scanned") == 100
        assert metrics.get("index_probes") == 1
        row_metrics = Metrics()
        list(IndexScan(index).execute(row_metrics))
        assert metrics.counters == row_metrics.counters

    def test_table_columnar_cache_invalidates_on_insert(self):
        table = make_table(random_rows(3, n=10))
        first = table.columnar()
        assert table.columnar() is first  # cached while rows unchanged
        table.insert((1, 2, 3.0))
        refreshed = table.columnar()
        assert refreshed is not first
        assert len(refreshed[0]) == 11

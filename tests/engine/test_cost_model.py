"""The raw cost model: arithmetic and shape of the primitives."""
from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine.cost import Cost, hash_cost, probe_cost, scan_cost, sort_cost


class TestCost:
    def test_total(self):
        assert Cost(io=2.0, cpu=3.0).total == 5.0

    def test_addition(self):
        combined = Cost(io=1.0, cpu=2.0) + Cost(io=3.0, cpu=4.0)
        assert combined == Cost(io=4.0, cpu=6.0)

    @given(st.floats(0, 1e6), st.floats(0, 1e6))
    def test_total_nonnegative(self, io, cpu):
        assert Cost(io=io, cpu=cpu).total >= 0


class TestPrimitives:
    def test_scan_linear(self):
        assert scan_cost(2000).total == pytest.approx(2 * scan_cost(1000).total)

    def test_sort_superlinear(self):
        assert sort_cost(2000).total > 2 * sort_cost(1000).total

    def test_sort_tiny_inputs(self):
        assert sort_cost(0).total == 0
        assert sort_cost(1).total == 1

    def test_probe_vs_scan_crossover(self):
        """A few probes beat a scan of many rows; many probes do not."""
        assert probe_cost(2).total < scan_cost(1000).total
        assert probe_cost(1000).total > scan_cost(1000).total

    def test_hash_build_heavier_than_probe(self):
        """Building costs more per row than probing, so the join-ordering
        search puts the smaller input on the build side."""
        assert hash_cost(900, 100).total > hash_cost(100, 900).total
        assert hash_cost(0, 1000).total < hash_cost(1000, 0).total

    @given(st.integers(2, 100_000))
    def test_sort_monotone(self, n):
        assert sort_cost(n + 1).total > sort_cost(n).total


class TestMetricsWork:
    def test_work_weights_sorts(self):
        from repro.engine.operators.base import Metrics

        flat = Metrics()
        flat.add("rows_scanned", 1000)
        sorting = Metrics()
        sorting.add("rows_scanned", 1000)
        sorting.add("sort_rows", 1000)
        assert sorting.work > flat.work

    def test_work_counts_probes(self):
        from repro.engine.operators.base import Metrics

        metrics = Metrics()
        metrics.add("index_probes", 10)
        assert metrics.work == pytest.approx(40.0)

    def test_str_mentions_work(self):
        from repro.engine.operators.base import Metrics

        metrics = Metrics()
        metrics.add("rows_scanned", 5)
        assert "work" in str(metrics)

"""Zero-row and empty-group aggregate semantics, across every mode.

The SQL contract pinned here (the headline fix of the empty-input SUM
bug, generalized to the whole aggregate matrix):

* an **ungrouped** aggregate over zero rows emits exactly one row:
  COUNT is 0, SUM / MIN / MAX / AVG are NULL;
* a **grouped** aggregate over zero rows emits zero rows (no groups —
  never a fabricated NULL group);

and both must hold identically through row-at-a-time, vectorized, and
parallel execution, through Hash and Stream aggregate operators, with
the plan cache hot or bypassed, and with the rewrite pack on or off.
"""
from __future__ import annotations

import pytest
from unittest import mock

from repro.core.dependency import fd
from repro.engine import parallel as parallel_mod
from repro.engine.database import Database
from repro.engine.expr import Col
from repro.engine.operators import (
    AggSpec,
    HashAggregate,
    SeqScan,
    StreamAggregate,
)
from repro.engine.schema import Schema
from repro.engine.table import Table
from repro.engine.types import DataType

ALL_FUNCS = ("COUNT", "SUM", "MIN", "MAX", "AVG")

AGG_SELECT = (
    "COUNT(*) AS n, SUM(v) AS s, MIN(v) AS mn, MAX(v) AS mx, AVG(v) AS av"
)

#: One row out, COUNT 0, everything else NULL.
EMPTY_GLOBAL = (0, None, None, None, None)


@pytest.fixture(scope="module")
def db():
    database = Database("emptyagg")
    table = database.create_table(
        "t",
        Schema.of(("k", DataType.INT), ("g", DataType.INT), ("v", DataType.INT)),
    )
    table.load((i, i % 3, i * 10) for i in range(50))
    table.declare(fd("k", "g,v"))
    database.create_index("t_k", "t", ["k"], clustered=True)
    return database


def _all_modes(database, sql):
    """Execute ``sql`` every way the engine can and yield (label, rows)."""
    yield "row", database.execute(sql).rows
    yield "row_nocache", database.execute(sql, use_cache=False).rows
    yield "fd", database.execute(sql, optimize=False).rows
    yield "norw", database.execute(sql, rewrites="off").rows
    for batch_size in (1, 7, 256):
        yield (
            f"batch[{batch_size}]",
            database.execute(sql, batch_size=batch_size).rows,
        )
    with mock.patch.object(parallel_mod, "PARALLEL_MIN_ROWS", 0):
        yield (
            "parallel[w2]",
            database.execute(sql, batch_size=7, workers=2).rows,
        )


def test_global_aggregates_over_zero_rows(db):
    sql = f"SELECT {AGG_SELECT} FROM t WHERE v < 0"
    for label, rows in _all_modes(db, sql):
        assert rows == [EMPTY_GLOBAL], (
            f"{label}: global aggregate over zero rows must be "
            f"{EMPTY_GLOBAL}, got {rows}"
        )


def test_grouped_aggregates_over_zero_rows(db):
    sql = f"SELECT g, {AGG_SELECT} FROM t WHERE v < 0 GROUP BY g"
    for label, rows in _all_modes(db, sql):
        assert rows == [], (
            f"{label}: grouped aggregate over zero rows must emit no "
            f"groups, got {rows}"
        )


def test_grouped_aggregates_by_clustered_key_over_zero_rows(db):
    """Grouping by the clustered key steers the planner to a
    StreamAggregate — the empty contract must hold there too."""
    sql = f"SELECT k, {AGG_SELECT} FROM t WHERE v < 0 GROUP BY k"
    for label, rows in _all_modes(db, sql):
        assert rows == [], f"{label}: expected no groups, got {rows}"


def test_nonempty_groups_never_fabricate_nulls(db):
    """The empty-SUM guard must not leak NULLs into real groups."""
    sql = f"SELECT g, {AGG_SELECT} FROM t GROUP BY g ORDER BY g"
    expected = None
    for label, rows in _all_modes(db, sql):
        assert all(None not in row for row in rows), label
        if expected is None:
            expected = rows
        else:
            assert sorted(rows, key=repr) == sorted(expected, key=repr), label


@pytest.mark.parametrize("operator", [HashAggregate, StreamAggregate])
@pytest.mark.parametrize("func", ALL_FUNCS)
def test_operator_level_empty_input(operator, func):
    """Each function × each aggregate operator, straight at the operator
    layer (no planner in the way)."""
    table = Table("e", Schema.of(("a", DataType.INT), ("b", DataType.INT)))
    table.load((), check=False)
    expr = None if func == "COUNT" else Col("b")
    spec = AggSpec(func, expr, "x")

    rows, _ = operator(SeqScan(table), [], [spec]).run()
    assert rows == [(0,)] if func == "COUNT" else [(None,)]

    grouped_rows, _ = operator(SeqScan(table), ["a"], [spec]).run()
    assert grouped_rows == []


@pytest.mark.parametrize("operator", [HashAggregate, StreamAggregate])
def test_operator_level_empty_input_batched(operator):
    table = Table("e", Schema.of(("a", DataType.INT), ("b", DataType.INT)))
    table.load((), check=False)
    specs = [AggSpec("COUNT", None, "n"), AggSpec("SUM", Col("b"), "s")]
    rows, _ = operator(SeqScan(table), [], specs).run_batches(8)
    assert rows == [(0, None)]
    grouped, _ = operator(SeqScan(table), ["a"], specs).run_batches(8)
    assert grouped == []

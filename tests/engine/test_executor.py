"""End-to-end SQL execution vs hand-written reference computations, and
differential testing across the three planner modes."""
from __future__ import annotations

import random
from collections import defaultdict

import pytest

from repro.core.dependency import od
from repro.engine.database import Database
from repro.engine.schema import Schema
from repro.engine.types import DataType


@pytest.fixture(scope="module")
def db():
    rng = random.Random(123)
    database = Database()
    orders = database.create_table(
        "orders",
        Schema.of(
            ("oid", DataType.INT),
            ("cust", DataType.INT),
            ("amount", DataType.INT),
            ("day", DataType.INT),
        ),
    )
    rows = [
        (i, rng.randint(1, 8), rng.randint(1, 100), rng.randint(1, 30))
        for i in range(1, 301)
    ]
    orders.load(rows)
    customers = database.create_table(
        "customers",
        Schema.of(("cid", DataType.INT), ("region", DataType.STR)),
    )
    customers.load([(i, f"r{i % 3}") for i in range(1, 9)])
    database.create_index("orders_day", "orders", ["day", "oid"])
    database.create_index("cust_pk", "customers", ["cid"])
    return database


MODES = ("naive", "fd", "od")


def run_all_modes(db, sql):
    out = {}
    for mode in MODES:
        from repro.engine.logical import bind
        from repro.engine.sql.parser import parse
        from repro.optimizer.planner import Planner

        plan = Planner(db, mode=mode).plan(bind(parse(sql)))
        rows, metrics = plan.run()
        out[mode] = (rows, metrics)
    return out


class TestAgainstReference:
    def test_filter_project(self, db):
        result = db.execute("SELECT oid, amount FROM orders WHERE amount > 90")
        expected = sorted(
            (r[0], r[2]) for r in db.table("orders").rows if r[2] > 90
        )
        assert sorted(result.rows) == expected

    def test_order_by(self, db):
        result = db.execute("SELECT oid FROM orders ORDER BY day, oid")
        expected = [
            (r[0],)
            for r in sorted(db.table("orders").rows, key=lambda r: (r[3], r[0]))
        ]
        assert result.rows == expected

    def test_group_by(self, db):
        result = db.execute(
            "SELECT cust, SUM(amount) AS total, COUNT(*) AS n "
            "FROM orders GROUP BY cust ORDER BY cust"
        )
        totals = defaultdict(lambda: [0, 0])
        for r in db.table("orders").rows:
            totals[r[1]][0] += r[2]
            totals[r[1]][1] += 1
        expected = [(c, t, n) for c, (t, n) in sorted(totals.items())]
        assert result.rows == expected

    def test_join(self, db):
        result = db.execute(
            "SELECT region, SUM(amount) AS total FROM orders o "
            "JOIN customers c ON o.cust = c.cid "
            "GROUP BY region ORDER BY region"
        )
        region_of = {r[0]: r[1] for r in db.table("customers").rows}
        totals = defaultdict(int)
        for r in db.table("orders").rows:
            totals[region_of[r[1]]] += r[2]
        assert result.rows == [(k, v) for k, v in sorted(totals.items())]

    def test_distinct(self, db):
        result = db.execute("SELECT DISTINCT cust FROM orders ORDER BY cust")
        expected = sorted({(r[1],) for r in db.table("orders").rows})
        assert result.rows == expected

    def test_limit(self, db):
        result = db.execute("SELECT oid FROM orders ORDER BY oid LIMIT 7")
        assert result.rows == [(i,) for i in range(1, 8)]

    def test_global_aggregate(self, db):
        result = db.execute("SELECT COUNT(*) AS n, MAX(amount) AS m FROM orders")
        rows = db.table("orders").rows
        assert result.rows == [(len(rows), max(r[2] for r in rows))]

    def test_scalar_function_in_select(self, db):
        result = db.execute("SELECT oid, amount * 2 AS double FROM orders WHERE oid = 1")
        row = db.table("orders").rows[0]
        assert result.rows == [(1, row[2] * 2)]

    def test_empty_result(self, db):
        result = db.execute("SELECT oid FROM orders WHERE amount > 1000")
        assert result.rows == []

    def test_between_filter(self, db):
        result = db.execute("SELECT COUNT(*) AS n FROM orders WHERE day BETWEEN 10 AND 12")
        expected = sum(1 for r in db.table("orders").rows if 10 <= r[3] <= 12)
        assert result.rows == [(expected,)]

    def test_in_filter(self, db):
        result = db.execute("SELECT COUNT(*) AS n FROM orders WHERE cust IN (1, 2)")
        expected = sum(1 for r in db.table("orders").rows if r[1] in (1, 2))
        assert result.rows == [(expected,)]


QUERIES = [
    "SELECT oid FROM orders WHERE day BETWEEN 5 AND 9 ORDER BY day, oid",
    "SELECT cust, COUNT(*) AS n FROM orders GROUP BY cust ORDER BY cust",
    "SELECT day, SUM(amount) AS t FROM orders WHERE amount >= 10 GROUP BY day ORDER BY day",
    "SELECT DISTINCT day FROM orders ORDER BY day",
    "SELECT region, AVG(amount) AS a FROM orders o JOIN customers c ON o.cust = c.cid "
    "GROUP BY region ORDER BY region",
    "SELECT oid, amount FROM orders WHERE day = 3 ORDER BY oid LIMIT 5",
    "SELECT MIN(amount) AS lo, MAX(amount) AS hi FROM orders WHERE day <= 15",
]


class TestModeEquivalence:
    """All three planning modes must return identical answers — the
    correctness contract of every rewrite."""

    @pytest.mark.parametrize("sql", QUERIES)
    def test_same_rows(self, db, sql):
        results = run_all_modes(db, sql)
        naive_rows = results["naive"][0]
        assert results["fd"][0] == naive_rows
        assert results["od"][0] == naive_rows

    def test_optimized_never_does_more_work(self, db):
        sql = QUERIES[0]
        results = run_all_modes(db, sql)
        assert results["od"][1].work <= results["naive"][1].work


class TestQueryResult:
    def test_as_dicts(self, db):
        result = db.execute("SELECT oid FROM orders ORDER BY oid LIMIT 1")
        assert result.as_dicts() == [{"oid": 1}]

    def test_columns(self, db):
        result = db.execute("SELECT oid, cust AS customer FROM orders LIMIT 1")
        assert result.columns == ("oid", "customer")

    def test_explain(self, db):
        text = db.explain("SELECT oid FROM orders ORDER BY oid")
        assert "Sort" in text or "IndexScan" in text


class TestHavingExecution:
    def test_having_filters_groups(self, db):
        result = db.execute(
            "SELECT cust, COUNT(*) AS n FROM orders GROUP BY cust "
            "HAVING COUNT(*) > 30 ORDER BY cust"
        )
        counts = defaultdict(int)
        for r in db.table("orders").rows:
            counts[r[1]] += 1
        expected = [(c, n) for c, n in sorted(counts.items()) if n > 30]
        assert result.rows == expected

    def test_having_hidden_agg_not_in_output(self, db):
        result = db.execute(
            "SELECT cust FROM orders GROUP BY cust HAVING SUM(amount) > 1000 ORDER BY cust"
        )
        assert result.columns == ("cust",)

    def test_having_same_across_modes(self, db):
        sql = (
            "SELECT cust, SUM(amount) AS t FROM orders GROUP BY cust "
            "HAVING SUM(amount) > 1200 ORDER BY cust"
        )
        results = run_all_modes(db, sql)
        assert results["naive"][0] == results["fd"][0] == results["od"][0]

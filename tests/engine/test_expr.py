"""Expression evaluation and rendering."""
from __future__ import annotations

import datetime

import pytest

from repro.engine.expr import (
    Arith,
    Between,
    BoolOp,
    Cmp,
    Col,
    Func,
    InList,
    Lit,
    Not,
)
from repro.engine.schema import Schema
from repro.engine.types import DataType

SCHEMA = Schema.of(
    ("t.a", DataType.INT), ("t.b", DataType.INT), ("t.d", DataType.DATE)
)
ROW = (3, 7, datetime.date(2001, 8, 15))


def ev(expr):
    return expr.compile_against(SCHEMA)(ROW)


class TestBasics:
    def test_col_qualified(self):
        assert ev(Col("t.a")) == 3

    def test_col_suffix(self):
        assert ev(Col("b")) == 7

    def test_lit(self):
        assert ev(Lit(42)) == 42

    def test_arith(self):
        assert ev(Arith("+", Col("a"), Col("b"))) == 10
        assert ev(Arith("*", Col("a"), Lit(2))) == 6
        assert ev(Arith("%", Col("b"), Lit(4))) == 3

    def test_cmp(self):
        assert ev(Cmp("<", Col("a"), Col("b")))
        assert not ev(Cmp("=", Col("a"), Col("b")))
        assert ev(Cmp(">=", Col("b"), Lit(7)))

    def test_boolop(self):
        yes = Cmp("<", Col("a"), Col("b"))
        no = Cmp(">", Col("a"), Col("b"))
        assert ev(BoolOp("AND", [yes, yes]))
        assert not ev(BoolOp("AND", [yes, no]))
        assert ev(BoolOp("OR", [no, yes]))

    def test_not(self):
        assert ev(Not(Cmp(">", Col("a"), Col("b"))))

    def test_between(self):
        assert ev(Between(Col("a"), Lit(1), Lit(3)))  # inclusive
        assert not ev(Between(Col("a"), Lit(4), Lit(9)))

    def test_in_list(self):
        assert ev(InList(Col("a"), [1, 3, 5]))
        assert not ev(InList(Col("a"), [2, 4]))


class TestDateFunctions:
    def test_year_quarter_month(self):
        assert ev(Func("YEAR", [Col("d")])) == 2001
        assert ev(Func("QUARTER", [Col("d")])) == 3
        assert ev(Func("MONTH", [Col("d")])) == 8
        assert ev(Func("DAY", [Col("d")])) == 15

    def test_day_of_year(self):
        assert ev(Func("DAY_OF_YEAR", [Col("d")])) == 227

    def test_unknown_function(self):
        with pytest.raises(ValueError):
            Func("NOPE", [Col("a")])

    def test_quarter_boundaries(self):
        import datetime as dt

        from repro.engine.expr import FUNCTIONS

        quarter = FUNCTIONS["QUARTER"]
        assert quarter(dt.date(2001, 1, 1)) == 1
        assert quarter(dt.date(2001, 3, 31)) == 1
        assert quarter(dt.date(2001, 4, 1)) == 2
        assert quarter(dt.date(2001, 12, 31)) == 4


class TestColumnsAndRender:
    def test_columns_collects_references(self):
        expr = BoolOp(
            "AND",
            [Cmp("=", Col("a"), Lit(1)), Between(Col("b"), Lit(0), Col("t.a"))],
        )
        assert expr.columns() == {"a", "b", "t.a"}

    def test_render_roundtrip_ish(self):
        expr = Between(Col("d"), Lit(datetime.date(2001, 1, 1)), Lit(datetime.date(2001, 2, 1)))
        text = expr.render()
        assert "BETWEEN" in text and "DATE '2001-01-01'" in text

    def test_lit_render_string(self):
        assert Lit("x").render() == "'x'"

"""Fault-tolerant execution: worker recovery, deadlines/cancellation,
and the deterministic fault-injection harness.

The contract under test (see :mod:`repro.engine.parallel` and
:mod:`repro.engine.errors`): a query under injected faults either returns
rows *and counters* bit-identical to fault-free serial execution, or
raises one of the typed errors — never a wrong answer, and never a pool
poisoned for the next query.  The chaos-matrix leg lives in
``tests/harness/test_differential.py``; this file covers the unit
surface: fault-plan parsing, the cancel token, retry/degradation
accounting, error propagation per backend, channel/pool lifecycle, and
the EXPLAIN/``QueryResult`` reporting.
"""
from __future__ import annotations

import queue as queue_module
import threading
import time

import pytest

from repro.engine import faults
from repro.engine import parallel as parallel_mod
from repro.engine.database import Database
from repro.engine.errors import (
    CancelToken,
    ExecutionFailed,
    QueryCancelled,
    QueryError,
    QueryTimeout,
)
from repro.engine.expr import Cmp, Col, Lit
from repro.engine.operators import Filter, SeqScan
from repro.engine.operators.base import Metrics
from repro.engine.parallel import insert_exchanges, shutdown_process_pool
from repro.engine.schema import Schema
from repro.engine.table import Table
from repro.engine.types import DataType
from repro.workloads.microbench import build_fact

ROWS = 6_000
SQL = (
    "SELECT bracket, COUNT(*) AS n, SUM(payable) AS total "
    "FROM fact WHERE income > 1000 GROUP BY bracket ORDER BY bracket"
)


@pytest.fixture
def db():
    database = Database()
    fact = build_fact(ROWS, seed=7)
    table = database.create_table("fact", fact.schema)
    for row in fact.rows:
        table.insert(row)
    return database


@pytest.fixture
def serial(db):
    return db.execute(SQL, batch_size=256)


@pytest.fixture(autouse=True)
def _no_leftover_faults():
    """Every test starts and ends fault-free, whatever it installed."""
    faults.clear()
    yield
    faults.clear()


def _install(spec: str) -> None:
    faults.install(faults.parse_plans(spec))


def assert_parity(result, serial) -> None:
    assert result.rows == serial.rows
    assert result.metrics.counters == serial.metrics.counters


# ----------------------------------------------------------------------
# Fault-plan parsing and scheduling
# ----------------------------------------------------------------------
def test_parse_plan_full_spec():
    plan = faults.parse_plan(
        "kill_worker:partition=1,batch=2,attempts=3,delay=0.5,seed=9"
    )
    assert plan == faults.FaultPlan(
        kind="kill_worker", partition=1, at_batch=2, attempts=3,
        delay_s=0.5, seed=9,
    )


def test_parse_plan_defaults_and_partition_aliases():
    assert faults.parse_plan("raise").partition is None
    assert faults.parse_plan("raise:partition=any").partition is None
    assert faults.parse_plan("raise:partition=seeded").partition == -1


def test_parse_plans_splits_on_semicolons():
    plans = faults.parse_plans("raise:partition=0 ; delay:delay=0.1")
    assert [plan.kind for plan in plans] == ["raise", "delay"]
    assert faults.parse_plans("  ") == ()


def test_parse_plan_rejects_unknown_kind_and_key():
    with pytest.raises(ValueError):
        faults.parse_plan("explode")
    with pytest.raises(ValueError):
        faults.parse_plan("raise:warp=9")
    with pytest.raises(ValueError):
        faults.FaultPlan(kind="raise", attempts=0)


def test_seeded_partition_resolves_deterministically():
    plan = faults.parse_plan("raise:partition=seeded,seed=5")
    first = faults.resolve((plan,), 8)
    second = faults.resolve((plan,), 8)
    assert first == second
    assert 0 <= first[0].partition < 8


def test_attempt_gating():
    plan = faults.parse_plan("raise:partition=0,attempts=2")
    assert faults.should_fire(plan, 0, 0, 0)
    assert faults.should_fire(plan, 0, 0, 1)
    assert not faults.should_fire(plan, 0, 0, 2)  # retries now succeed
    assert not faults.should_fire(plan, 1, 0, 0)  # wrong partition
    assert not faults.should_fire(plan, 0, 1, 0)  # wrong batch


def test_env_knob_activates_plans(monkeypatch):
    faults.clear()
    monkeypatch.setenv("REPRO_FAULTS", "delay:delay=0.2;raise")
    assert [plan.kind for plan in faults.active_plans()] == ["delay", "raise"]
    faults.install(())  # programmatic install overrides the env
    assert faults.active_plans() == ()


# ----------------------------------------------------------------------
# CancelToken
# ----------------------------------------------------------------------
def test_cancel_token_validates_timeout():
    with pytest.raises(ValueError):
        CancelToken(0)
    with pytest.raises(ValueError):
        CancelToken(-1)


def test_cancel_token_deadline():
    token = CancelToken(0.01)
    assert token.remaining() <= 0.01
    time.sleep(0.02)
    assert token.expired()
    with pytest.raises(QueryTimeout):
        token.check()


def test_cancel_token_cancellation():
    token = CancelToken()
    token.check()  # no deadline, not cancelled: a no-op
    token.cancel("client went away")
    assert token.cancelled
    with pytest.raises(QueryCancelled, match="client went away"):
        token.check()


def test_typed_errors_are_query_errors():
    assert issubclass(QueryTimeout, QueryError)
    assert issubclass(QueryCancelled, QueryError)
    assert issubclass(ExecutionFailed, QueryError)
    error = ExecutionFailed("boom", worker_traceback="trace...")
    assert error.worker_traceback == "trace..."


# ----------------------------------------------------------------------
# Worker recovery: retry, then the degradation ladder
# ----------------------------------------------------------------------
def test_killed_worker_is_retried_and_result_is_identical(db, serial):
    _install("kill_worker:partition=0,attempts=1")
    result = db.execute(SQL, workers=2, backend="process", batch_size=256)
    assert_parity(result, serial)
    assert result.retries >= 1
    assert result.degraded_to is None


def test_persistent_kill_degrades_to_thread_backend(db, serial):
    _install("kill_worker:partition=0,attempts=99")
    result = db.execute(SQL, workers=2, backend="process", batch_size=256)
    assert_parity(result, serial)
    assert result.retries == parallel_mod.RETRY_LIMIT
    assert result.degraded_to == "thread"
    # The pool is rebuilt transparently: the next query is fault-free.
    faults.clear()
    again = db.execute(SQL, workers=2, backend="process", batch_size=256)
    assert_parity(again, serial)
    assert again.retries == 0 and again.degraded_to is None


def test_transient_raise_on_thread_backend_is_retried(db, serial):
    _install("raise:partition=1,attempts=1")
    result = db.execute(SQL, workers=2, backend="thread", batch_size=256)
    assert_parity(result, serial)
    assert result.retries == 1


def test_dropped_result_stream_is_detected_and_retried(db, serial):
    _install("drop_results:partition=1,attempts=1")
    result = db.execute(SQL, workers=2, backend="thread", batch_size=256)
    assert_parity(result, serial)
    assert result.retries == 1


def test_persistent_drop_degrades_to_inline(db, serial):
    # drop_results cannot fire on the inline seam, so the ladder's last
    # rung completes the partition.
    _install("drop_results:partition=1,attempts=99")
    result = db.execute(SQL, workers=2, backend="thread", batch_size=256)
    assert_parity(result, serial)
    assert result.degraded_to == "inline"


def test_fault_on_every_rung_raises_execution_failed(db):
    # `raise` fires on every backend, so retries and the whole ladder
    # fail: the typed error carries the first failure's traceback.
    _install("raise:partition=0,attempts=99")
    with pytest.raises(ExecutionFailed) as excinfo:
        db.execute(SQL, workers=2, backend="thread", batch_size=256)
    assert "InjectedFault" in str(excinfo.value)
    assert excinfo.value.worker_traceback is not None


def test_recovery_accounting_stays_out_of_metrics(db, serial):
    """The parity invariant: retries/degradation never leak into the
    query's Metrics counters — they live in exchange_stats alone."""
    _install("raise:partition=0,attempts=1")
    result = db.execute(SQL, workers=2, backend="thread", batch_size=256)
    assert result.metrics.counters == serial.metrics.counters
    info = result.plan.plan_info
    assert info.recovery["retries"] == 1
    assert "fault tolerance: 1 retried attempt(s)" in info.describe()


# ----------------------------------------------------------------------
# Deadlines and cancellation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["inline", "thread", "process"])
def test_deadline_raises_query_timeout_and_pool_survives(db, serial, backend):
    _install("delay:delay=1.0")
    started = time.monotonic()
    with pytest.raises(QueryTimeout):
        db.execute(
            SQL, workers=2, backend=backend, batch_size=256, timeout_s=0.2
        )
    assert time.monotonic() - started < 5.0, "timeout must land promptly"
    faults.clear()
    again = db.execute(SQL, workers=2, backend=backend, batch_size=256)
    assert_parity(again, serial)


def test_serial_paths_honor_deadlines(db):
    for kwargs in ({}, {"batch_size": 64}):
        with pytest.raises(QueryTimeout):
            db.execute(
                "SELECT income, payable FROM fact ORDER BY income",
                timeout_s=1e-9,
                **kwargs,
            )
    # The database still answers afterwards.
    assert len(db.execute(SQL).rows)


def test_timeout_is_recorded_for_explain(db):
    _install("delay:delay=1.0")
    with pytest.raises(QueryTimeout):
        db.execute(
            SQL, workers=2, backend="thread", batch_size=256, timeout_s=0.2
        )
    # The cached plan's info records the post-mortem for EXPLAIN.
    plan = db.plan(SQL, workers=2, backend="thread")
    recovery = plan.plan_info.recovery
    assert recovery["timed_out"] is True
    assert recovery["failed"] == "QueryTimeout"
    assert "deadline exceeded" in plan.plan_info.describe()


def test_cancel_token_rides_metrics(db):
    token = CancelToken()
    plan = db.plan(SQL)
    token.cancel()
    with pytest.raises(QueryCancelled):
        plan.run_batches(64, token=token)


# ----------------------------------------------------------------------
# Error propagation: real kernel errors surface typed, pools survive
# ----------------------------------------------------------------------
ERROR_SQL = (
    "SELECT income / (income - income) AS boom FROM fact"
)


def test_inline_backend_propagates_raw_errors(db):
    with pytest.raises(ZeroDivisionError):
        db.execute(ERROR_SQL, workers=2, backend="inline", batch_size=256)


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_worker_errors_surface_with_traceback(db, serial, backend):
    with pytest.raises(ExecutionFailed) as excinfo:
        db.execute(ERROR_SQL, workers=2, backend=backend, batch_size=256)
    assert "ZeroDivisionError" in str(excinfo.value)
    assert "ZeroDivisionError" in (excinfo.value.worker_traceback or "")
    # The pool is not poisoned: the next query on the same backend works.
    again = db.execute(SQL, workers=2, backend=backend, batch_size=256)
    assert_parity(again, serial)


# ----------------------------------------------------------------------
# Channel hardening: bounded queues + consumer-close early termination
# ----------------------------------------------------------------------
def test_channel_close_unblocks_a_full_producer():
    channel = parallel_mod._Channel(depth=1)
    channel.put(("m", "first"))  # fills the queue
    blocked = threading.Event()
    done = threading.Event()

    def producer():
        blocked.set()
        try:
            channel.put(("m", "second"))  # blocks: queue full
        except parallel_mod._ConsumerClosed:
            pass
        done.set()

    thread = threading.Thread(target=producer, daemon=True)
    thread.start()
    assert blocked.wait(2.0)
    time.sleep(0.05)  # let the producer actually park on the full queue
    channel.close()
    assert done.wait(2.0), "close() must unblock a parked producer"
    thread.join(2.0)


def test_abandoned_exchange_with_tiny_channel_bound(monkeypatch):
    """A consumer that stops mid-stream (without exhausting the
    exchange) must not wedge producers on the bounded channels — and the
    shared pool must still serve a full follow-up run."""
    monkeypatch.setattr(parallel_mod, "_STREAM_QUEUE_DEPTH", 1)
    table = Table("t", Schema.of(("a", DataType.INT)))
    for value in range(5_000):
        table.insert((value,))
    chain = Filter(SeqScan(table), Cmp(">=", Col("t.a"), Lit(0)))
    exchange = insert_exchanges(chain, 4, backend="thread")
    stream = exchange.execute_batches(Metrics(), 64)
    next(stream)
    stream.close()  # abandon: GeneratorExit → abort path
    # Follow-up: a complete run over the same shared pool.
    serial_rows, serial_metrics = Filter(
        SeqScan(table), Cmp(">=", Col("t.a"), Lit(0))
    ).run_batches(64)
    exchange2 = insert_exchanges(
        Filter(SeqScan(table), Cmp(">=", Col("t.a"), Lit(0))),
        4,
        backend="thread",
    )
    rows, metrics = exchange2.run_batches(64)
    assert rows == serial_rows
    assert metrics.counters == serial_metrics.counters


# ----------------------------------------------------------------------
# Process-pool lifecycle
# ----------------------------------------------------------------------
def test_process_pool_shutdown_reaps_workers(db, serial):
    result = db.execute(SQL, workers=2, backend="process", batch_size=256)
    assert_parity(result, serial)
    pool = parallel_mod._PROCESS_POOL
    assert pool is not None
    assert all(process.daemon for process in pool.processes)
    processes = list(pool.processes)
    shutdown_process_pool()
    assert parallel_mod._PROCESS_POOL is None
    assert all(not process.is_alive() for process in processes)
    shutdown_process_pool()  # idempotent: double shutdown is a no-op


def test_pool_shutdown_is_registered_atexit(db, serial):
    db.execute(SQL, workers=2, backend="process", batch_size=256)
    assert parallel_mod._ATEXIT_REGISTERED, (
        "creating a pool must register the interpreter-exit shutdown hook"
    )


def test_respawn_replaces_dead_workers(db, serial):
    db.execute(SQL, workers=2, backend="process", batch_size=256)
    pool = parallel_mod._PROCESS_POOL
    victim = pool.processes[0]
    victim.terminate()
    victim.join(timeout=2.0)
    assert not pool.alive()
    pool.respawn_dead()
    assert pool.alive()
    assert pool.processes[0] is not victim
    # And the respawned pool still executes correctly.
    result = db.execute(SQL, workers=2, backend="process", batch_size=256)
    assert_parity(result, serial)

"""Differential fuzzing: random SQL must agree across all planner modes.

Generates random (but valid) queries over a fixed schema with declared
ODs, runs each through the naive / fd / od planners, and checks:

* identical result multisets;
* any ORDER BY is actually honored by every mode's output;
* the od plan never does more work than the naive plan.

On top of the planner-mode matrix, the *execution*-mode matrix: every
generated query must be **bit- and counter-identical** across row,
vectorized (drawn ``batch_size``), and parallel (drawn ``workers``)
execution — including the degenerate databases (empty tables, tables
smaller than the partition count) where partition slices go empty.

This is the broadest correctness net over the whole engine + optimizer
stack: any unsound rewrite shows up as a row mismatch.
"""
from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dependency import fd, od
from repro.engine.database import Database
from repro.engine.logical import bind
from repro.engine.schema import Schema
from repro.engine.sql.parser import parse
from repro.engine.types import DataType
from repro.optimizer.planner import Planner

COLUMNS = ("a", "b", "c", "mono", "grp")


def build_db() -> Database:
    rng = random.Random(99)
    database = Database()
    table = database.create_table(
        "t",
        Schema.of(
            ("a", DataType.INT),
            ("b", DataType.INT),
            ("c", DataType.INT),
            ("mono", DataType.INT),   # mono = 3*a + 1 (ordered by a)
            ("grp", DataType.INT),    # grp = a % 4 (determined by a)
        ),
    )
    rows = []
    for _ in range(400):
        a = rng.randint(0, 50)
        rows.append((a, rng.randint(0, 20), rng.randint(0, 20), 3 * a + 1, a % 4))
    table.load(rows)
    table.declare(od("a", "mono"))
    table.declare(od("mono", "a"))
    table.declare(fd("a", "mono,grp"))
    database.create_index("t_a", "t", ["a", "b"], clustered=True)
    database.create_index("t_mono", "t", ["mono"])
    return database


DB = build_db()

comparisons = st.sampled_from(["=", "<", "<=", ">", ">=", "<>"])
columns = st.sampled_from(COLUMNS)
values = st.integers(0, 55)


@st.composite
def predicates(draw):
    kind = draw(st.sampled_from(["cmp", "between", "in"]))
    column = draw(columns)
    if kind == "cmp":
        return f"{column} {draw(comparisons)} {draw(values)}"
    if kind == "between":
        low, high = sorted((draw(values), draw(values)))
        return f"{column} BETWEEN {low} AND {high}"
    chosen = draw(st.lists(values, min_size=1, max_size=3))
    return f"{column} IN ({', '.join(map(str, chosen))})"


@st.composite
def queries(draw):
    where = ""
    conjuncts = draw(st.lists(predicates(), max_size=2))
    if conjuncts:
        where = " WHERE " + " AND ".join(conjuncts)
    grouped = draw(st.booleans())
    if grouped:
        group_columns = draw(
            st.lists(columns, min_size=1, max_size=2, unique=True)
        )
        select = ", ".join(group_columns) + ", COUNT(*) AS n, SUM(b) AS s"
        tail = f" GROUP BY {', '.join(group_columns)}"
        orderable = list(group_columns)
    else:
        select = "a, b, c, mono, grp"
        tail = ""
        orderable = list(COLUMNS)
    order_columns = draw(st.lists(st.sampled_from(orderable), max_size=2, unique=True))
    if order_columns:
        tail += f" ORDER BY {', '.join(order_columns)}"
    return f"SELECT {select} FROM t{where}{tail}", order_columns


@settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(queries())
def test_modes_agree(query):
    sql, order_columns = query
    outputs = {}
    for mode in ("naive", "fd", "od"):
        plan = Planner(DB, mode=mode).plan(bind(parse(sql)))
        rows, metrics = plan.run()
        outputs[mode] = (rows, metrics)
        # any ORDER BY must actually hold in the emitted order
        if order_columns:
            positions = [plan.schema.position(plan.schema.resolve(c)) for c in order_columns]
            keys = [tuple(row[i] for i in positions) for row in rows]
            assert keys == sorted(keys), f"{mode} violated ORDER BY for {sql}"
    naive_rows = sorted(outputs["naive"][0])
    assert sorted(outputs["fd"][0]) == naive_rows, sql
    assert sorted(outputs["od"][0]) == naive_rows, sql


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    queries(),
    st.sampled_from([1, 2, 4]),
    st.sampled_from([1, 7, 64]),
)
def test_parallel_mode_agrees(query, workers, batch_size):
    """Row, vectorized, and parallel execution of one od plan template
    must be bit-identical (same rows, same order) and counter-identical
    at every drawn (workers, batch_size) combination."""
    sql, _ = query
    serial_plan = Planner(DB, mode="od").plan(bind(parse(sql)))
    rows_row, metrics_row = serial_plan.run()
    rows_batch, metrics_batch = serial_plan.run_batches(batch_size)
    assert rows_batch == rows_row, sql
    assert metrics_batch.counters == metrics_row.counters, sql

    parallel_plan = Planner(DB, mode="od", workers=workers).plan(bind(parse(sql)))
    rows_parallel, metrics_parallel = parallel_plan.run_batches(batch_size)
    assert rows_parallel == rows_row, f"workers={workers}: {sql}"
    assert metrics_parallel.counters == metrics_row.counters, (
        f"workers={workers}: {sql}"
    )


def _edge_db(rows) -> Database:
    database = Database()
    table = database.create_table(
        "e", Schema.of(("a", DataType.INT), ("b", DataType.INT))
    )
    table.load(rows)
    database.create_index("e_a", "e", ["a"], clustered=True)
    return database


EDGE_SQL = (
    "SELECT a, b FROM e ORDER BY a",
    "SELECT a, COUNT(*) AS n FROM e GROUP BY a ORDER BY a",
    "SELECT COUNT(*) AS n, SUM(b) AS s FROM e",
    "SELECT DISTINCT b FROM e",
    "SELECT a, b FROM e WHERE a >= 1 ORDER BY a",
)


@pytest.mark.parametrize(
    "rows",
    [[], [(1, 2)], [(2, 1), (1, 2), (1, 0)]],
    ids=["empty", "single-row", "fewer-rows-than-partitions"],
)
def test_parallel_edge_tables(rows):
    """Empty tables and single-row partitions: every partition slice may
    be empty, and the matrix must still agree exactly."""
    database = _edge_db(rows)
    for sql in EDGE_SQL:
        serial = database.execute(sql)
        for workers in (1, 2, 4, 5):
            for batch_size in (1, 7):
                result = database.execute(
                    sql, batch_size=batch_size, workers=workers
                )
                label = f"{sql} workers={workers} batch={batch_size}"
                assert result.rows == serial.rows, label
                assert result.metrics.counters == serial.metrics.counters, label


@settings(max_examples=40, deadline=None)
@given(queries())
def test_od_mode_never_worse_than_naive(query):
    sql, _ = query
    work = {}
    for mode in ("naive", "od"):
        plan = Planner(DB, mode=mode).plan(bind(parse(sql)))
        _, metrics = plan.run()
        work[mode] = metrics.work
    # allow a tiny tolerance: an index probe charge on an empty range
    assert work["od"] <= work["naive"] * 1.05 + 10, sql

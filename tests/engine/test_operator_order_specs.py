"""Every operator's *declared* OrderSpec must match its *observed* output
order on random instances — the conformance contract the planner's
property framework rests on."""
from __future__ import annotations

import random

import pytest

from repro.engine.expr import Cmp, Col, Lit
from repro.engine.index import SortedIndex
from repro.engine.operators import (
    AggSpec,
    Filter,
    HashAggregate,
    HashDistinct,
    HashJoin,
    IndexScan,
    Limit,
    MergeJoin,
    NestedLoopJoin,
    Project,
    SeqScan,
    Sort,
    SortedDistinct,
    StreamAggregate,
    TopN,
)
from repro.engine.schema import Schema
from repro.engine.table import Table
from repro.engine.types import DataType
from repro.optimizer.properties import OrderSpec

ROWS = 150


@pytest.fixture(params=[3, 17, 2024])
def table(request):
    rng = random.Random(request.param)
    t = Table("t", Schema.of(("a", DataType.INT), ("b", DataType.INT), ("c", DataType.FLOAT)))
    t.load(
        [
            (rng.randint(0, 7), rng.randint(0, 7), round(rng.random() * 10, 2))
            for _ in range(ROWS)
        ],
        check=False,
    )
    return t


@pytest.fixture
def dim():
    t = Table("dim", Schema.of(("k", DataType.INT), ("label", DataType.STR)))
    t.load([(i, f"k{i}") for i in range(8)], check=False)
    return t


def assert_declared_order_observed(op):
    """The output stream must actually be sorted by the declared spec —
    in *both* execution modes, at boundary batch sizes — and provides()
    must agree with the legacy ``ordering`` attribute."""
    spec = op.provides()
    assert isinstance(spec, OrderSpec)
    assert tuple(spec) == tuple(op.ordering)
    rows, _ = op.run()
    positions = [op.schema.position(column) for column in spec]
    keys = [tuple(row[p] for p in positions) for row in rows]
    assert keys == sorted(keys), f"{op.label()} violates its declared order {spec!r}"
    for batch_size in (1, 7, 1024):
        batch_rows, _ = op.run_batches(batch_size)
        batch_keys = [tuple(row[p] for p in positions) for row in batch_rows]
        assert batch_keys == sorted(batch_keys), (
            f"{op.label()} violates its declared order {spec!r} "
            f"in batch mode (batch_size={batch_size})"
        )
        assert batch_rows == rows, (
            f"{op.label()} batch output differs from row output "
            f"(batch_size={batch_size})"
        )
    return rows


class TestLeafAndUnaryOperators:
    def test_seq_scan_declares_nothing(self, table):
        op = SeqScan(table)
        assert op.provides().empty
        assert_declared_order_observed(op)

    def test_index_scan_declares_key_order(self, table):
        index = SortedIndex("t_ab", table, ["a", "b"]).build()
        op = IndexScan(index)
        assert op.provides() == OrderSpec(["t.a", "t.b"])
        assert_declared_order_observed(op)

    def test_filter_preserves(self, table):
        index = SortedIndex("t_a", table, ["a"]).build()
        op = Filter(IndexScan(index), Cmp("<=", Col("t.a"), Lit(4)))
        assert op.provides() == OrderSpec(["t.a"])
        assert_declared_order_observed(op)

    def test_limit_preserves(self, table):
        index = SortedIndex("t_a2", table, ["a"]).build()
        op = Limit(IndexScan(index), 20)
        assert op.provides() == OrderSpec(["t.a"])
        assert_declared_order_observed(op)

    def test_sort_enforces_its_keys(self, table):
        op = Sort(SeqScan(table), ["t.b", "t.a"])
        assert op.provides() == OrderSpec(["t.b", "t.a"])
        assert_declared_order_observed(op)

    def test_topn_enforces_its_keys(self, table):
        op = TopN(SeqScan(table), ["t.c"], 17)
        assert op.provides() == OrderSpec(["t.c"])
        rows = assert_declared_order_observed(op)
        assert len(rows) == 17


class TestProjectPropagation:
    def test_pass_through_rename(self, table):
        index = SortedIndex("t_ab2", table, ["a", "b"]).build()
        op = Project(IndexScan(index), [Col("t.a"), Col("t.b")], ["x", "y"])
        assert op.provides() == OrderSpec(["x", "y"])
        assert_declared_order_observed(op)

    def test_dropped_column_truncates(self, table):
        index = SortedIndex("t_ab3", table, ["a", "b"]).build()
        # t.b is projected away: the declared order stops at the rename of t.a
        op = Project(IndexScan(index), [Col("t.a"), Col("t.c")], ["a", "c"])
        assert op.provides() == OrderSpec(["a"])
        assert_declared_order_observed(op)


class TestJoinsPreserveProbeOrder:
    def test_hash_join(self, table, dim):
        index = SortedIndex("t_a3", table, ["a"]).build()
        op = HashJoin(IndexScan(index), SeqScan(dim), ["t.a"], ["dim.k"])
        assert op.provides() == OrderSpec(["t.a"])
        assert_declared_order_observed(op)

    def test_merge_join(self, table, dim):
        left = Sort(SeqScan(table), ["t.a"])
        right = Sort(SeqScan(dim), ["dim.k"])
        op = MergeJoin(left, right, ["t.a"], ["dim.k"])
        assert op.provides() == OrderSpec(["t.a"])
        assert_declared_order_observed(op)

    def test_nested_loop_join(self, table, dim):
        left = Sort(SeqScan(table), ["t.b"])
        op = NestedLoopJoin(left, SeqScan(dim), ["t.a"], ["dim.k"])
        assert op.provides() == OrderSpec(["t.b"])
        assert_declared_order_observed(op)


class TestAggregatesAndDistinct:
    SPECS = staticmethod(lambda: [AggSpec("COUNT", None, "n")])

    def test_stream_aggregate_restricts_to_group_prefix(self, table):
        child = Sort(SeqScan(table), ["t.a", "t.b"])
        op = StreamAggregate(child, ["t.a"], self.SPECS())
        # the input order survives only up to the grouping-column prefix
        assert op.provides() == OrderSpec(["t.a"])
        assert_declared_order_observed(op)

    def test_stream_aggregate_full_group_order(self, table):
        child = Sort(SeqScan(table), ["t.a", "t.b"])
        op = StreamAggregate(child, ["t.a", "t.b"], self.SPECS())
        assert op.provides() == OrderSpec(["t.a", "t.b"])
        assert_declared_order_observed(op)

    def test_hash_aggregate_declares_nothing(self, table):
        op = HashAggregate(SeqScan(table), ["t.a"], self.SPECS())
        assert op.provides().empty
        assert_declared_order_observed(op)

    def test_sorted_distinct_preserves(self, table):
        child = Sort(SeqScan(table), ["t.a", "t.b", "t.c"])
        op = SortedDistinct(child)
        assert op.provides() == OrderSpec(["t.a", "t.b", "t.c"])
        assert_declared_order_observed(op)

    def test_hash_distinct_declares_nothing(self, table):
        op = HashDistinct(SeqScan(table))
        assert op.provides().empty
        assert_declared_order_observed(op)

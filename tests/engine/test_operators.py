"""Physical operators against naive reference computations."""
from __future__ import annotations

import pytest

from repro.engine.expr import Cmp, Col, Lit
from repro.engine.index import SortedIndex
from repro.engine.operators import (
    AggSpec,
    Filter,
    HashAggregate,
    HashDistinct,
    HashJoin,
    IndexScan,
    Limit,
    MergeJoin,
    Metrics,
    NestedLoopJoin,
    Project,
    SeqScan,
    Sort,
    SortedDistinct,
    StreamAggregate,
)
from repro.engine.schema import Schema
from repro.engine.table import Table
from repro.engine.types import DataType


def make_table(name="t", rows=()):
    table = Table(name, Schema.of(("a", DataType.INT), ("b", DataType.INT)))
    table.load(rows, check=False)
    return table


def run(op):
    rows, metrics = op.run()
    return rows, metrics


class TestScans:
    def test_seq_scan(self):
        rows, metrics = run(SeqScan(make_table(rows=[(1, 2), (3, 4)])))
        assert rows == [(1, 2), (3, 4)]
        assert metrics.get("rows_scanned") == 2

    def test_seq_scan_qualifies_schema(self):
        op = SeqScan(make_table(), alias="x")
        assert op.schema.names == ("x.a", "x.b")

    def test_index_scan_ordering_property(self):
        table = make_table(rows=[(3, 0), (1, 0)])
        index = SortedIndex("i", table, ["a"])
        op = IndexScan(index, alias="t")
        assert op.ordering == ("t.a",)
        rows, _ = run(op)
        assert rows == [(1, 0), (3, 0)]

    def test_index_scan_bounds(self):
        table = make_table(rows=[(i, 0) for i in range(10)])
        index = SortedIndex("i", table, ["a"])
        rows, _ = run(IndexScan(index, low=(2,), high=(4,)))
        assert [r[0] for r in rows] == [2, 3, 4]


class TestFilterProject:
    def test_filter(self):
        scan = SeqScan(make_table(rows=[(1, 2), (3, 4)]))
        rows, _ = run(Filter(scan, Cmp(">", Col("a"), Lit(1))))
        assert rows == [(3, 4)]

    def test_filter_preserves_ordering(self):
        table = make_table(rows=[(1, 0), (2, 0)])
        index = SortedIndex("i", table, ["a"])
        op = Filter(IndexScan(index), Lit(True))
        assert op.ordering == op.child.ordering

    def test_project_compute(self):
        scan = SeqScan(make_table(rows=[(1, 2)]))
        from repro.engine.expr import Arith

        op = Project(scan, [Arith("+", Col("a"), Col("b"))], ["s"])
        rows, _ = run(op)
        assert rows == [(3,)]
        assert op.schema.names == ("s",)

    def test_project_ordering_renames(self):
        table = make_table(rows=[(1, 2)])
        index = SortedIndex("i", table, ["a", "b"])
        scan = IndexScan(index, alias="t")
        op = Project(scan, [Col("a"), Col("b")], ["x", "y"])
        assert op.ordering == ("x", "y")

    def test_project_ordering_truncates_at_dropped(self):
        table = make_table(rows=[(1, 2)])
        index = SortedIndex("i", table, ["a", "b"])
        scan = IndexScan(index, alias="t")
        op = Project(scan, [Col("b")], ["y"])
        assert op.ordering == ()  # a was dropped; order by b alone unknown


class TestSort:
    def test_sorts_and_charges(self):
        scan = SeqScan(make_table(rows=[(3, 1), (1, 2), (2, 0)]))
        op = Sort(scan, ["a"])
        rows, metrics = run(op)
        assert [r[0] for r in rows] == [1, 2, 3]
        assert metrics.get("sorts") == 1
        assert metrics.get("sort_rows") == 3

    def test_sort_is_stable(self):
        scan = SeqScan(make_table(rows=[(1, 3), (1, 1), (1, 2)]))
        rows, _ = run(Sort(scan, ["a"]))
        assert [r[1] for r in rows] == [3, 1, 2]


class TestDistinctLimit:
    def test_hash_distinct(self):
        scan = SeqScan(make_table(rows=[(1, 1), (1, 1), (2, 2)]))
        rows, _ = run(HashDistinct(scan))
        assert rows == [(1, 1), (2, 2)]

    def test_sorted_distinct(self):
        scan = SeqScan(make_table(rows=[(1, 1), (1, 1), (2, 2), (2, 2)]))
        rows, _ = run(SortedDistinct(scan))
        assert rows == [(1, 1), (2, 2)]

    def test_limit(self):
        scan = SeqScan(make_table(rows=[(i, 0) for i in range(10)]))
        rows, _ = run(Limit(scan, 3))
        assert len(rows) == 3


class TestAggregates:
    def data(self):
        return make_table(rows=[(1, 10), (1, 20), (2, 5)])

    def specs(self):
        return [
            AggSpec("COUNT", None, "n"),
            AggSpec("SUM", Col("b"), "total"),
            AggSpec("MIN", Col("b"), "low"),
            AggSpec("MAX", Col("b"), "high"),
            AggSpec("AVG", Col("b"), "mean"),
        ]

    def test_hash_aggregate(self):
        op = HashAggregate(SeqScan(self.data()), ["a"], self.specs())
        rows, _ = run(op)
        assert sorted(rows) == [(1, 2, 30, 10, 20, 15.0), (2, 1, 5, 5, 5, 5.0)]

    def test_stream_aggregate_on_sorted_input(self):
        table = self.data()
        index = SortedIndex("i", table, ["a"])
        op = StreamAggregate(IndexScan(index, alias="t"), ["a"], self.specs())
        rows, _ = run(op)
        assert rows == [(1, 2, 30, 10, 20, 15.0), (2, 1, 5, 5, 5, 5.0)]

    def test_stream_matches_hash(self):
        table = make_table(rows=[(i % 4, i) for i in range(40)])
        index = SortedIndex("i", table, ["a"])
        specs = [AggSpec("SUM", Col("b"), "s")]
        stream_rows, _ = run(StreamAggregate(IndexScan(index), ["a"], specs))
        hash_rows, _ = run(HashAggregate(SeqScan(table), ["a"], specs))
        assert sorted(stream_rows) == sorted(hash_rows)

    def test_global_aggregate_empty_input(self):
        empty = make_table(rows=[])
        specs = [AggSpec("COUNT", None, "n"), AggSpec("SUM", Col("b"), "s")]
        for op in (
            HashAggregate(SeqScan(empty), [], specs),
            StreamAggregate(SeqScan(empty), [], specs),
        ):
            rows, _ = run(op)
            # SQL semantics: COUNT of nothing is 0, SUM of nothing is NULL.
            assert rows == [(0, None)]

    def test_grouped_aggregate_empty_input(self):
        empty = make_table(rows=[])
        rows, _ = run(
            HashAggregate(SeqScan(empty), ["a"], [AggSpec("COUNT", None, "n")])
        )
        assert rows == []

    def test_bad_agg_spec(self):
        with pytest.raises(ValueError):
            AggSpec("MEDIAN", Col("b"), "m")
        with pytest.raises(ValueError):
            AggSpec("SUM", None, "s")


class TestJoins:
    def tables(self):
        left = make_table("l", rows=[(1, 10), (2, 20), (2, 21), (3, 30)])
        right = Table("r", Schema.of(("k", DataType.INT), ("v", DataType.STR)))
        right.load([(1, "one"), (2, "two"), (4, "four")], check=False)
        return left, right

    def expected(self):
        return sorted(
            [
                (1, 10, 1, "one"),
                (2, 20, 2, "two"),
                (2, 21, 2, "two"),
            ]
        )

    def test_hash_join(self):
        left, right = self.tables()
        op = HashJoin(SeqScan(left), SeqScan(right), ["a"], ["k"])
        rows, _ = run(op)
        assert sorted(rows) == self.expected()

    def test_merge_join(self):
        left, right = self.tables()
        li = SortedIndex("li", left, ["a"])
        ri = SortedIndex("ri", right, ["k"])
        op = MergeJoin(IndexScan(li), IndexScan(ri), ["a"], ["k"])
        rows, _ = run(op)
        assert sorted(rows) == self.expected()

    def test_nested_loop_join(self):
        left, right = self.tables()
        op = NestedLoopJoin(SeqScan(left), SeqScan(right), ["a"], ["k"])
        rows, _ = run(op)
        assert sorted(rows) == self.expected()

    def test_merge_join_duplicate_keys_both_sides(self):
        left = make_table("l", rows=[(1, 0), (1, 1)])
        right = Table("r", Schema.of(("k", DataType.INT), ("v", DataType.INT)))
        right.load([(1, 7), (1, 8)], check=False)
        li = SortedIndex("li", left, ["a"])
        ri = SortedIndex("ri", right, ["k"])
        rows, _ = run(MergeJoin(IndexScan(li), IndexScan(ri), ["a"], ["k"]))
        assert len(rows) == 4  # full cross product of the matching group

    def test_join_schema_concat(self):
        left, right = self.tables()
        op = HashJoin(SeqScan(left), SeqScan(right), ["a"], ["k"])
        assert op.schema.names == ("l.a", "l.b", "r.k", "r.v")

    def test_key_length_mismatch(self):
        left, right = self.tables()
        with pytest.raises(ValueError):
            HashJoin(SeqScan(left), SeqScan(right), ["a"], [])


class TestExplain:
    def test_tree_rendering(self):
        scan = SeqScan(make_table(rows=[(1, 2)]))
        op = Limit(Sort(scan, ["a"]), 1)
        text = op.explain()
        assert "Limit(1)" in text and "Sort(t.a)" in text and "SeqScan" in text

"""Parallel batch execution: exchange operators, partition hooks,
placement, and determinism.

Four layers of guarantees:

* **property** (hypothesis): a :class:`MergeExchange` over *randomly*
  partitioned, randomly ordered instances — partitions that genuinely
  interleave, unlike the contiguous ones the planner builds — always
  yields a stream conforming to the declared ``OrderSpec`` (checked with
  the same conformance checker every operator answers to) while
  preserving the row multiset;
* **partition hooks**: source partitions are contiguous, cover the input
  exactly, and charge metrics that *sum* to the serial scan's
  (``index_probes`` from partition 0 alone);
* **placement**: exchanges land above maximal partitionable chains, with
  the kind the declared order property dictates; ``LIMIT`` subtrees stay
  serial;
* **determinism** (the regression the issue names): repeated parallel
  executions of one query produce identical row order and identical
  ``Metrics`` counters — no scheduling-dependent output, ever.
"""
from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.database import Database
from repro.engine.operators import (
    AggSpec,
    Filter,
    HashAggregate,
    HashJoin,
    IndexScan,
    Limit,
    Project,
    SeqScan,
    TopN,
)
from repro.engine.operators.base import Metrics, Operator
from repro.engine.expr import Cmp, Col, Lit
from repro.engine.index import SortedIndex
from repro.engine import parallel as parallel_mod
from repro.engine.parallel import (
    BACKENDS,
    MergeExchange,
    UnionExchange,
    insert_exchanges,
    partition_pipeline,
    partitionable,
)
from repro.engine.schema import Schema
from repro.engine.table import Table
from repro.engine.types import DataType
from repro.optimizer.properties import OrderSpec, exchange_kind
from repro.workloads.taxes import build_taxes

from test_operator_order_specs import assert_declared_order_observed


# ----------------------------------------------------------------------
# Test seam: a fixed row list with a declared (and honored) ordering
# ----------------------------------------------------------------------
class StaticSource(Operator):
    def __init__(self, schema: Schema, rows, ordering=()):
        self.schema = schema
        self.static_rows = list(rows)
        self.ordering = tuple(ordering)

    def execute(self, metrics: Metrics):
        for row in self.static_rows:
            metrics.add("rows_scanned")
            yield row


SCHEMA = Schema.of(("a", DataType.INT), ("b", DataType.INT), ("c", DataType.INT))


# ----------------------------------------------------------------------
# Satellite: the merge-exchange conformance property
# ----------------------------------------------------------------------
@st.composite
def merge_instances(draw):
    rows = draw(
        st.lists(
            st.tuples(
                st.integers(0, 5), st.integers(0, 5), st.integers(0, 100)
            ),
            max_size=60,
        )
    )
    partition_count = draw(st.integers(1, 5))
    assignment = draw(
        st.lists(
            st.integers(0, partition_count - 1),
            min_size=len(rows),
            max_size=len(rows),
        )
    )
    key_width = draw(st.integers(1, 3))
    workers = draw(st.integers(1, 4))
    return rows, assignment, partition_count, key_width, workers


@settings(max_examples=80, deadline=None)
@given(merge_instances())
def test_merge_exchange_conforms_to_declared_order(instance):
    """Randomly partitioned, randomly ordered input: the merged stream
    must conform to the declared OrderSpec (the operator conformance
    contract) and preserve the row multiset — in both execution modes,
    at boundary batch sizes, threaded and not."""
    rows, assignment, partition_count, key_width, workers = instance
    keys = ("a", "b", "c")[:key_width]
    positions = [SCHEMA.position(key) for key in keys]

    def keyfn(row):
        return tuple(row[p] for p in positions)

    partitions = [
        StaticSource(
            SCHEMA,
            sorted(
                (row for row, where in zip(rows, assignment) if where == p),
                key=keyfn,
            ),
            ordering=keys,
        )
        for p in range(partition_count)
    ]
    exchange = MergeExchange(partitions, workers=workers, keys=keys)
    assert exchange.provides() == OrderSpec(keys)
    out = assert_declared_order_observed(exchange)
    assert sorted(out) == sorted(rows), "merge-exchange lost or invented rows"


@st.composite
def backend_instances(draw):
    """Smaller instances than merge_instances: each example runs every
    backend twice, and the process backend pays real IPC per run."""
    rows = draw(
        st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 4), st.integers(0, 50)),
            max_size=40,
        )
    )
    partition_count = draw(st.integers(1, 4))
    assignment = draw(
        st.lists(
            st.integers(0, partition_count - 1),
            min_size=len(rows),
            max_size=len(rows),
        )
    )
    key_width = draw(st.integers(1, 3))
    return rows, assignment, partition_count, key_width


@settings(max_examples=12, deadline=None)
@given(backend_instances())
def test_merge_exchange_identical_across_backends(instance):
    """The backend is an execution detail, never a semantic one: over
    randomly partitioned morsel streams (empty partitions and
    single-morsel partitions included), every backend — inline, thread,
    process — produces bit-identical rows and identical Metrics counters,
    across repeated runs, and the merged stream conforms to the declared
    OrderSpec."""
    rows, assignment, partition_count, key_width = instance
    keys = ("a", "b", "c")[:key_width]
    positions = [SCHEMA.position(key) for key in keys]

    def keyfn(row):
        return tuple(row[p] for p in positions)

    def build(backend):
        return MergeExchange(
            [
                StaticSource(
                    SCHEMA,
                    sorted(
                        (r for r, where in zip(rows, assignment) if where == p),
                        key=keyfn,
                    ),
                    ordering=keys,
                )
                for p in range(partition_count)
            ],
            workers=3,
            keys=keys,
            backend=backend,
        )

    reference_rows = None
    reference_counters = None
    for backend in BACKENDS:
        exchange = build(backend)
        for _ in range(2):  # repeated runs: no scheduling leakage
            out, metrics = exchange.run_batches(7)
            if reference_rows is None:
                reference_rows = out
                reference_counters = metrics.counters
                assert sorted(out) == sorted(rows)
                observed = [keyfn(row) for row in out]
                assert observed == sorted(observed), (
                    "merged stream violates the declared OrderSpec"
                )
            assert out == reference_rows, f"{backend} backend drifted in rows"
            assert metrics.counters == reference_counters, (
                f"{backend} backend drifted in counters"
            )


def test_merge_exchange_requires_ordering():
    with pytest.raises(ValueError):
        MergeExchange([StaticSource(SCHEMA, [], ordering=())], keys=())


def test_union_exchange_concatenates_in_partition_order():
    parts = [
        StaticSource(SCHEMA, [(3, 0, 0), (1, 0, 0)]),
        StaticSource(SCHEMA, []),
        StaticSource(SCHEMA, [(2, 0, 0)]),
    ]
    exchange = UnionExchange(parts, workers=2)
    assert exchange.provides().empty
    rows = assert_declared_order_observed(exchange)
    assert rows == [(3, 0, 0), (1, 0, 0), (2, 0, 0)]


def test_union_exchange_never_advertises_an_order():
    """Even over individually sorted partitions (whose ranges may
    interleave), concatenation makes no ordering promise — provides()
    must stay empty."""
    parts = [
        StaticSource(SCHEMA, [(1, 0, 0), (3, 0, 0)], ordering=("a",)),
        StaticSource(SCHEMA, [(2, 0, 0), (4, 0, 0)], ordering=("a",)),
    ]
    exchange = UnionExchange(parts)
    assert exchange.provides().empty
    assert_declared_order_observed(exchange)


# ----------------------------------------------------------------------
# Partition hooks: contiguity, coverage, counter totals
# ----------------------------------------------------------------------
@pytest.fixture
def table():
    t = Table("t", SCHEMA)
    t.load(
        [(i % 7, (i * 3) % 5, i) for i in range(103)], check=False
    )
    return t


@pytest.mark.parametrize("count", [1, 2, 4, 5, 200])
def test_seq_scan_partitions_cover_exactly(table, count):
    serial = SeqScan(table)
    serial_rows, serial_metrics = serial.run()
    merged = Metrics()
    gathered = []
    for index in range(count):
        clone = serial.partition_clone(index, count)
        rows, metrics = clone.run()
        batch_rows, batch_metrics = clone.run_batches(8)
        assert batch_rows == rows and batch_metrics.counters == metrics.counters
        gathered.extend(rows)
        for key, value in metrics.counters.items():
            merged.add(key, value)
    assert gathered == serial_rows, "partitions must concatenate to the scan"
    assert merged.counters == serial_metrics.counters


@pytest.mark.parametrize("count", [1, 3, 4])
def test_index_scan_partitions_cover_exactly_and_probe_once(table, count):
    index = SortedIndex("t_ab", table, ["a", "b"]).build()
    serial = IndexScan(index, low=(1,), high=(5,))
    serial_rows, serial_metrics = serial.run()
    merged = Metrics()
    gathered = []
    for part in range(count):
        clone = serial.partition_clone(part, count)
        assert clone.provides() == serial.provides()
        rows, metrics = clone.run()
        gathered.extend(rows)
        if part > 0:
            assert metrics.get("index_probes") == 0, (
                "only partition 0 may charge the probe"
            )
        for key, value in metrics.counters.items():
            merged.add(key, value)
    assert gathered == serial_rows
    assert merged.counters == serial_metrics.counters


def test_partition_pipeline_clones_filters_and_projections(table):
    chain = Project(
        Filter(SeqScan(table), Cmp("<=", Col("t.a"), Lit(4))),
        [Col("t.a"), Col("t.c")],
        ["a", "c"],
    )
    assert partitionable(chain)
    serial_rows, serial_metrics = chain.run()
    merged = Metrics()
    gathered = []
    for index in range(3):
        clone = partition_pipeline(chain, index, 3)
        assert clone.schema.names == chain.schema.names
        assert tuple(clone.ordering) == tuple(chain.ordering)
        rows, metrics = clone.run_batches(16)
        gathered.extend(rows)
        for key, value in metrics.counters.items():
            merged.add(key, value)
    assert gathered == serial_rows
    assert merged.counters == serial_metrics.counters


# ----------------------------------------------------------------------
# Exchange placement
# ----------------------------------------------------------------------
def test_placement_union_over_unordered_chain(table):
    plan = HashAggregate(
        Filter(SeqScan(table), Cmp("<=", Col("t.a"), Lit(4))),
        ["t.a"],
        [AggSpec("COUNT", None, "n")],
    )
    serial_rows, serial_metrics = plan.run()
    parallel = insert_exchanges(plan, 4)
    assert parallel is plan  # aggregate stays the root
    exchange = plan.child
    assert isinstance(exchange, UnionExchange)
    assert len(exchange.partitions) == 4
    assert exchange_kind(exchange.subtree.provides()) == "union"
    rows, metrics = parallel.run_batches(16)
    assert rows == serial_rows
    assert metrics.counters == serial_metrics.counters


def test_placement_merge_over_ordered_chain(table):
    index = SortedIndex("t_a", table, ["a"]).build()
    chain = Filter(IndexScan(index), Cmp("<=", Col("t.a"), Lit(5)))
    serial_rows, serial_metrics = chain.run()
    parallel = insert_exchanges(chain, 3)
    assert isinstance(parallel, MergeExchange)
    assert parallel.keys == ("t.a",)
    assert parallel.provides() == OrderSpec(["t.a"])
    rows, metrics = parallel.run_batches(16)
    assert rows == serial_rows
    assert metrics.counters == serial_metrics.counters


def test_placement_skips_limit_subtrees(table):
    plan = Limit(Filter(SeqScan(table), Cmp("<=", Col("t.a"), Lit(4))), 5)
    parallel = insert_exchanges(plan, 4)
    assert parallel is plan
    assert isinstance(plan.child, Filter), "LIMIT subtree must stay serial"
    assert isinstance(plan.child.child, SeqScan)


def test_placement_parallelizes_under_topn(table):
    plan = TopN(SeqScan(table), ["t.c"], 7)
    serial_rows, serial_metrics = plan.run()
    parallel = insert_exchanges(plan, 4)
    assert isinstance(plan.child, UnionExchange), "TopN drains fully: safe"
    rows, metrics = parallel.run_batches(16)
    assert rows == serial_rows
    assert metrics.counters == serial_metrics.counters


def test_placement_reaches_both_join_sides(table):
    dim = Table("dim", Schema.of(("k", DataType.INT), ("label", DataType.STR)))
    dim.load([(i, f"k{i}") for i in range(7)], check=False)
    plan = HashJoin(SeqScan(table), SeqScan(dim), ["t.a"], ["dim.k"])
    serial_rows, serial_metrics = plan.run()
    parallel = insert_exchanges(plan, 2)
    assert isinstance(plan.left, UnionExchange)
    assert isinstance(plan.right, UnionExchange)
    rows, metrics = parallel.run_batches(32)
    assert rows == serial_rows
    assert metrics.counters == serial_metrics.counters


def test_single_worker_is_the_inline_fallback(table):
    chain = Filter(SeqScan(table), Cmp("<=", Col("t.a"), Lit(4)))
    serial_rows, serial_metrics = chain.run()
    parallel = insert_exchanges(chain, 1)
    assert isinstance(parallel, UnionExchange)
    assert len(parallel.partitions) == 1
    rows, metrics = parallel.run_batches(16)
    assert rows == serial_rows
    assert metrics.counters == serial_metrics.counters


def test_row_mode_execute_falls_back_to_the_serial_subtree(table):
    chain = Filter(SeqScan(table), Cmp("<=", Col("t.a"), Lit(4)))
    serial_rows, serial_metrics = chain.run()
    parallel = insert_exchanges(
        Filter(SeqScan(table), Cmp("<=", Col("t.a"), Lit(4))), 4
    )
    rows, metrics = parallel.run()
    assert rows == serial_rows
    assert metrics.counters == serial_metrics.counters


# ----------------------------------------------------------------------
# Process backend mechanics: morsel streaming, shipping accounting
# ----------------------------------------------------------------------
def test_process_backend_streams_multiple_morsels(table, monkeypatch):
    """With the morsel size forced tiny, a partition's results cross the
    result queue in several morsels — and the reassembled stream is still
    bit- and counter-identical to serial, with the serialization cost
    accounted in exchange_stats (never in query Metrics)."""
    monkeypatch.setattr(parallel_mod, "MORSEL_ROWS", 8)
    serial_rows, serial_metrics = Filter(
        SeqScan(table), Cmp("<=", Col("t.a"), Lit(4))
    ).run_batches(16)
    exchange = insert_exchanges(
        Filter(SeqScan(table), Cmp("<=", Col("t.a"), Lit(4))),
        2,
        backend="process",
    )
    rows, metrics = exchange.run_batches(16)
    assert rows == serial_rows
    assert metrics.counters == serial_metrics.counters
    stats = exchange.exchange_stats
    assert stats["backend"] == "process"
    assert stats["morsels"] >= 2, "tiny morsel size must split the stream"
    assert stats["rows_shipped"] == len(serial_rows)
    assert stats["chain_bytes"] > 0


def test_backend_is_rejected_when_unknown(table):
    chain = Filter(SeqScan(table), Cmp("<=", Col("t.a"), Lit(4)))
    with pytest.raises(ValueError):
        insert_exchanges(chain, 2, backend="greenlet")
    with pytest.raises(ValueError):
        UnionExchange([SeqScan(table)], backend="greenlet")


# ----------------------------------------------------------------------
# Satellite: the min-rows placement gate
# ----------------------------------------------------------------------
def test_min_rows_gate_keeps_snowflake_dimensions_serial():
    """The placement bugfix: exchanges used to land on every partitionable
    chain regardless of size.  In the snowflake workload the fact scan
    (thousands of rows) must parallelize while every dimension chain
    (≤ a few hundred rows) plans serial — with the skip visible in the
    planner notes — and overriding the gate to 0 parallelizes the
    dimensions too."""
    from repro.workloads.snowflake import build_snowflake

    flake = build_snowflake(
        days=150, sales_rows=4_000, items=60, brands=12, stores=8
    )
    database = flake.database
    sql = (
        "SELECT r.r_name, SUM(f.f_qty) AS qty, COUNT(*) AS n "
        "FROM region r "
        "JOIN store st ON r.r_region_sk = st.st_region_sk "
        "JOIN sales f ON st.st_store_sk = f.f_store_sk "
        "GROUP BY r_name ORDER BY r_name"
    )
    plan = database.plan(sql, workers=4, use_cache=False)
    info = plan.plan_info
    labels = [label for (_, _, _, label) in info.exchanges]
    assert labels, "the fact chain must still parallelize"
    assert all("sales" in label for label in labels), (
        f"only fact chains may carry exchanges, got {labels}"
    )
    assert any("min-rows gate" in note for note in info.notes), (
        "gated dimension chains must leave a visible planner note"
    )

    import unittest.mock as mock

    with mock.patch.object(parallel_mod, "PARALLEL_MIN_ROWS", 0):
        ungated = database.plan(sql, workers=4, use_cache=False)
    ungated_labels = [label for (_, _, _, label) in ungated.plan_info.exchanges]
    assert len(ungated_labels) > len(labels), (
        "gate override must parallelize the dimension chains as well"
    )

    # The gate is a pure cost call: gated and ungated plans agree with
    # serial on rows and counters.
    serial = database.execute(sql)
    gated = database.execute(sql, workers=4)
    assert gated.rows == serial.rows
    assert gated.metrics.counters == serial.metrics.counters


# ----------------------------------------------------------------------
# Database-level wiring
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def tax_db():
    database = Database("parallel-tax")
    build_taxes(database, rows=1_500)
    return database


ORDERED_SQL = (
    "SELECT income, bracket, payable FROM taxes ORDER BY bracket, payable"
)
GROUPED_SQL = (
    "SELECT bracket, COUNT(*) AS n, SUM(payable) AS total FROM taxes "
    "GROUP BY bracket ORDER BY bracket"
)


def test_database_parallel_matches_serial(tax_db):
    serial = tax_db.execute(ORDERED_SQL)
    for workers in (1, 2, 4):
        result = tax_db.execute(ORDERED_SQL, batch_size=13, workers=workers)
        assert result.workers == workers
        assert result.rows == serial.rows
        assert result.metrics.counters == serial.metrics.counters


def test_database_workers_defaults_to_batch_mode(tax_db):
    result = tax_db.execute(GROUPED_SQL, workers=2)
    serial = tax_db.execute(GROUPED_SQL)
    assert result.batch_size is not None  # parallel implies batch execution
    assert result.rows == serial.rows
    assert result.metrics.counters == serial.metrics.counters


def test_database_rejects_bad_worker_counts(tax_db):
    with pytest.raises(ValueError):
        tax_db.execute(GROUPED_SQL, workers=0)
    with pytest.raises(ValueError):
        tax_db.plan(GROUPED_SQL, workers=-1)
    with pytest.raises(ValueError):  # explain agrees with execute
        tax_db.explain(GROUPED_SQL, batch_size=-5, workers=2)


def test_database_backends_match_serial(tax_db):
    serial = tax_db.execute(ORDERED_SQL)
    for backend in BACKENDS:
        result = tax_db.execute(
            ORDERED_SQL, batch_size=13, workers=4, backend=backend
        )
        assert result.backend == backend
        assert result.rows == serial.rows
        assert result.metrics.counters == serial.metrics.counters


def test_database_rejects_bad_backends(tax_db):
    with pytest.raises(ValueError):
        tax_db.execute(GROUPED_SQL, workers=2, backend="greenlet")
    with pytest.raises(ValueError):  # backend= requires workers=
        tax_db.plan(GROUPED_SQL, backend="process")


def test_backends_cache_under_their_own_mode(tax_db):
    """Backend-qualified mode keys (od+w2+thread / od+w2+proc /
    od+w2+inline): backends never serve each other's plans — the
    exchange operators carry their backend."""
    tax_db.plan_cache.clear()
    thread_plan = tax_db.plan(ORDERED_SQL, workers=2)
    process_plan = tax_db.plan(ORDERED_SQL, workers=2, backend="process")
    inline_plan = tax_db.plan(ORDERED_SQL, workers=2, backend="inline")
    assert thread_plan is not process_plan
    assert process_plan is not inline_plan
    assert thread_plan is not inline_plan
    assert tax_db.plan(ORDERED_SQL, workers=2, backend="process") is process_plan
    assert tax_db.plan(ORDERED_SQL, workers=2, backend="thread") is thread_plan
    assert tax_db.plan(ORDERED_SQL, workers=2) is thread_plan


def test_parallel_plans_cache_under_their_own_mode(tax_db):
    tax_db.plan_cache.clear()
    serial = tax_db.plan(ORDERED_SQL)
    parallel = tax_db.plan(ORDERED_SQL, workers=2)
    assert parallel is not serial, "parallel and serial plans must not mix"
    assert parallel.plan_info.cache_state == "miss"
    again = tax_db.plan(ORDERED_SQL, workers=2)
    assert again is parallel and again.plan_info.cache_state == "hit"
    other = tax_db.plan(ORDERED_SQL, workers=4)
    assert other is not parallel, "each worker count is its own plan"


def test_explain_reports_partitions_and_exchange_kind(tax_db):
    text = tax_db.explain(ORDERED_SQL, workers=4, verbose=True)
    assert "MergeExchange(4 partitions" in text
    assert "exchange: merge-exchange, 4 partitions" in text
    assert "parallel (4 workers" in text
    grouped = tax_db.explain(
        "SELECT SUM(payable) AS total FROM taxes", workers=3, verbose=True
    )
    assert "UnionExchange(3 partitions)" in grouped
    assert "exchange: union-exchange, 3 partitions" in grouped


def test_explain_reports_the_backend(tax_db):
    text = tax_db.explain(ORDERED_SQL, workers=4, backend="process", verbose=True)
    assert "parallel: 4 workers, process backend" in text
    assert "parallel (4 workers, batch size 1024, process backend)" in text
    default = tax_db.explain(ORDERED_SQL, workers=4, verbose=True)
    assert "parallel: 4 workers, thread backend" in default


# ----------------------------------------------------------------------
# Satellite: the determinism regression
# ----------------------------------------------------------------------
def test_parallel_determinism_regression(tax_db):
    """Two (and more) runs of the same parallel query must produce
    identical row order and identical Metrics counters — scheduling must
    never leak into results.  Exercised both through the plan cache (the
    same operator tree re-executed) and with fresh plans each time."""
    for sql in (ORDERED_SQL, GROUPED_SQL):
        cached = [
            tax_db.execute(sql, batch_size=13, workers=4) for _ in range(3)
        ]
        fresh = [
            tax_db.execute(sql, batch_size=13, workers=4, use_cache=False)
            for _ in range(3)
        ]
        reference = cached[0]
        for other in cached[1:] + fresh:
            assert other.rows == reference.rows, "row order drifted across runs"
            assert other.metrics.counters == reference.metrics.counters, (
                "counters drifted across runs"
            )

"""Picklability of what the process backend ships.

The process exchange backend pickles partitioned operator chains out to
workers and ``ColumnBatch`` columns back.  These tests pin the wire
contract down in isolation — no pools involved:

* a :class:`ColumnBatch` round-trips through ``pickle`` with equal rows,
  schema, and length, shipping plain column lists (no ``Table``
  back-pointers, even when its columns are lazy views into one);
* partitioned scan clones round-trip into :class:`ShippedScan` with
  equal rows, equal ``Metrics`` counters (``index_probes`` stays with
  partition 0), and the same declared ``OrderSpec``;
* whole partitionable chains (Filter/Project over a scan) round-trip
  with their compiled kernels rebuilt on the worker side.
"""
from __future__ import annotations

import pickle

import pytest

from repro.engine.batch import ColumnBatch
from repro.engine.expr import Cmp, Col, Lit
from repro.engine.index import SortedIndex
from repro.engine.operators import Filter, IndexScan, Project, SeqScan
from repro.engine.operators.scans import ShippedScan
from repro.engine.parallel import partition_pipeline
from repro.engine.schema import Schema
from repro.engine.table import Table
from repro.engine.types import DataType

SCHEMA = Schema.of(("a", DataType.INT), ("b", DataType.INT), ("c", DataType.FLOAT))


@pytest.fixture
def table():
    t = Table("t", SCHEMA)
    t.load([(i % 7, (i * 3) % 5, i * 0.25) for i in range(103)], check=False)
    return t


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj, pickle.HIGHEST_PROTOCOL))


# ----------------------------------------------------------------------
# ColumnBatch
# ----------------------------------------------------------------------
def test_column_batch_roundtrips():
    batch = ColumnBatch.from_rows(SCHEMA, [(1, 2, 0.5), (3, 4, 1.5)])
    out = roundtrip(batch)
    assert out.to_rows() == batch.to_rows()
    assert len(out) == len(batch)
    assert out.schema.names == batch.schema.names


def test_column_batch_roundtrip_normalizes_lazy_views(table):
    """A batch sliced out of a table's columnar cache must ship plain
    lists — never a reference back into the table's storage."""
    columns = table.columnar()
    batch = ColumnBatch(SCHEMA, [column[10:20] for column in columns], 10)
    out = roundtrip(batch)
    assert out.to_rows() == batch.to_rows()
    assert all(isinstance(column, list) for column in out.columns)


def test_empty_column_batch_roundtrips():
    out = roundtrip(ColumnBatch.empty(SCHEMA))
    assert len(out) == 0
    assert out.to_rows() == []


# ----------------------------------------------------------------------
# Scan clones → ShippedScan
# ----------------------------------------------------------------------
def _parity(original, shipped, batch_size=16):
    rows, metrics = original.run_batches(batch_size)
    shipped_rows, shipped_metrics = shipped.run_batches(batch_size)
    assert shipped_rows == rows
    assert shipped_metrics.counters == metrics.counters
    # And the row path agrees too.
    row_rows, row_metrics = shipped.run()
    base_rows, base_metrics = original.run()
    assert row_rows == base_rows
    assert row_metrics.counters == base_metrics.counters


@pytest.mark.parametrize("part", [None, (0, 3), (2, 3)])
def test_seq_scan_partition_clone_roundtrips(table, part):
    scan = SeqScan(table) if part is None else SeqScan(table).partition_clone(*part)
    shipped = roundtrip(scan)
    assert isinstance(shipped, ShippedScan)
    assert not hasattr(shipped, "table"), "no Table back-pointer may ship"
    assert shipped.provides() == scan.provides()
    _parity(scan, shipped)


@pytest.mark.parametrize("part", [None, (0, 3), (1, 3), (2, 3)])
def test_index_scan_partition_clone_roundtrips(table, part):
    index = SortedIndex("t_ab", table, ["a", "b"]).build()
    scan = IndexScan(index, low=(1,), high=(5,))
    if part is not None:
        scan = scan.partition_clone(*part)
    shipped = roundtrip(scan)
    assert isinstance(shipped, ShippedScan)
    assert shipped.provides() == scan.provides(), (
        "the declared OrderSpec must survive the wire"
    )
    assert tuple(shipped.ordering) == ("t.a", "t.b")
    _parity(scan, shipped)


def test_only_partition_zero_ships_the_probe_charge(table):
    index = SortedIndex("t_a", table, ["a"]).build()
    scan = IndexScan(index)
    zero = roundtrip(scan.partition_clone(0, 2))
    one = roundtrip(scan.partition_clone(1, 2))
    assert zero.charge_probe and not one.charge_probe
    _, zero_metrics = zero.run_batches(16)
    _, one_metrics = one.run_batches(16)
    assert zero_metrics.get("index_probes") == 1
    assert one_metrics.get("index_probes") == 0


# ----------------------------------------------------------------------
# Whole partitioned chains (kernels recompile on arrival)
# ----------------------------------------------------------------------
def test_filter_project_chain_roundtrips(table):
    chain = Project(
        Filter(SeqScan(table), Cmp("<=", Col("t.a"), Lit(4))),
        [Col("t.a"), Col("t.c")],
        ["a", "c"],
    )
    for index in range(3):
        clone = partition_pipeline(chain, index, 3)
        shipped = roundtrip(clone)
        assert shipped.schema.names == clone.schema.names
        assert shipped.provides() == clone.provides()
        _parity(clone, shipped)


def test_partition_bounds_resolve_at_pickle_time(table):
    """The materialized form freezes the bounds current when pickling
    happens — which is execution start, since the backend pickles chains
    as it launches the run.  Rows appended afterwards are invisible to
    the shipped clone, exactly like a snapshot taken at execution time."""
    clone = SeqScan(table).partition_clone(1, 2)
    blob = pickle.dumps(clone, pickle.HIGHEST_PROTOCOL)
    before = pickle.loads(blob)
    table.insert((6, 1, 99.0))
    after = pickle.loads(blob)
    assert before.run()[0] == after.run()[0], (
        "a pickled clone is a snapshot: later inserts must not leak in"
    )
    fresh = pickle.loads(
        pickle.dumps(SeqScan(table).partition_clone(1, 2), pickle.HIGHEST_PROTOCOL)
    )
    assert (6, 1, 99.0) in fresh.run()[0], (
        "re-pickling after the insert must see the new row"
    )
    assert (6, 1, 99.0) not in before.run()[0]

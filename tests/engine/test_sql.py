"""The SQL front-end: lexer, parser, binder."""
from __future__ import annotations

import datetime

import pytest

from repro.engine.expr import Between, BoolOp, Cmp, Col, Func, InList, Lit
from repro.engine.logical import (
    BindError,
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    bind,
)
from repro.engine.sql.ast import AggCall
from repro.engine.sql.lexer import SqlSyntaxError, tokenize
from repro.engine.sql.parser import parse


class TestLexer:
    def test_basic_tokens(self):
        kinds = [t.kind for t in tokenize("SELECT a FROM t")]
        assert kinds == ["KEYWORD", "IDENT", "KEYWORD", "IDENT", "EOF"]

    def test_string_literal(self):
        tokens = tokenize("'hello world'")
        assert tokens[0].kind == "STRING" and tokens[0].value == "hello world"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_numbers(self):
        tokens = tokenize("1 2.5 .75")
        assert [t.value for t in tokens[:-1]] == ["1", "2.5", ".75"]

    def test_symbols(self):
        tokens = tokenize("a >= 1 AND b <> 2")
        symbols = [t.value for t in tokens if t.kind == "SYMBOL"]
        assert symbols == [">=", "<>"]

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("a ? b")

    def test_keywords_case_insensitive(self):
        assert tokenize("select")[0].is_keyword("SELECT")


class TestParser:
    def test_minimal(self):
        statement = parse("SELECT a FROM t")
        assert statement.items[0].expr == Col("a")
        assert statement.table.table == "t"

    def test_star(self):
        statement = parse("SELECT * FROM t")
        assert statement.items[0].expr is None

    def test_aliases(self):
        statement = parse("SELECT a AS x, b y FROM t AS u")
        assert statement.items[0].alias == "x"
        assert statement.items[1].alias == "y"
        assert statement.table.alias == "u"

    def test_implicit_table_alias(self):
        statement = parse("SELECT a FROM tab t2")
        assert statement.table.alias == "t2"

    def test_where_precedence(self):
        statement = parse("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert isinstance(statement.where, BoolOp)
        assert statement.where.op == "OR"

    def test_between_and_in(self):
        statement = parse(
            "SELECT a FROM t WHERE a BETWEEN 1 AND 5 AND b IN (1, 2)"
        )
        conjuncts = statement.where.operands
        assert isinstance(conjuncts[0], Between)
        assert isinstance(conjuncts[1], InList)

    def test_date_literal(self):
        statement = parse("SELECT a FROM t WHERE d = DATE '2001-05-06'")
        assert statement.where.right == Lit(datetime.date(2001, 5, 6))

    def test_join(self):
        statement = parse(
            "SELECT a FROM t JOIN u ON t.x = u.y AND t.z = u.w"
        )
        join = statement.joins[0]
        assert join.left_columns == ("t.x", "t.z")
        assert join.right_columns == ("u.y", "u.w")

    def test_group_order_limit(self):
        statement = parse(
            "SELECT a, COUNT(*) AS n FROM t GROUP BY a ORDER BY a LIMIT 5"
        )
        assert statement.group_by == ("a",)
        assert statement.order_by[0].column == "a"
        assert statement.limit == 5

    def test_desc_rejected(self):
        with pytest.raises(SqlSyntaxError) as excinfo:
            parse("SELECT a FROM t ORDER BY a DESC")
        assert "ascending" in str(excinfo.value)

    def test_asc_accepted(self):
        statement = parse("SELECT a FROM t ORDER BY a ASC, b")
        assert [item.column for item in statement.order_by] == ["a", "b"]

    def test_aggregates(self):
        statement = parse("SELECT COUNT(*), SUM(b) FROM t")
        assert statement.items[0].expr == AggCall("COUNT", None)
        assert statement.items[1].expr == AggCall("SUM", Col("b"))

    def test_scalar_function(self):
        statement = parse("SELECT YEAR(d) FROM t")
        assert statement.items[0].expr == Func("YEAR", [Col("d")])

    def test_arithmetic_precedence(self):
        statement = parse("SELECT a + b * 2 FROM t")
        expr = statement.items[0].expr
        assert expr.op == "+" and expr.right.op == "*"

    def test_unary_minus(self):
        statement = parse("SELECT a FROM t WHERE a > -5")
        assert statement.where.right.op == "-"

    def test_trailing_garbage(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a FROM t WHERE a = 1 banana extra")

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct

    def test_sum_star_invalid(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT SUM(*) FROM t")


class TestBinder:
    def test_plain_pipeline_shape(self):
        node = bind(parse(
            "SELECT a FROM t WHERE a = 1 ORDER BY a LIMIT 2"
        ))
        assert isinstance(node, LogicalLimit)
        assert isinstance(node.child, LogicalSort)
        assert isinstance(node.child.child, LogicalProject)
        assert isinstance(node.child.child.child, LogicalFilter)
        assert isinstance(node.child.child.child.child, LogicalScan)

    def test_joins_left_deep(self):
        node = bind(parse(
            "SELECT a FROM t JOIN u ON t.x = u.y JOIN v ON u.y = v.z"
        ))
        project = node
        join2 = project.child
        assert isinstance(join2, LogicalJoin)
        assert isinstance(join2.left, LogicalJoin)
        assert isinstance(join2.right, LogicalScan)

    def test_aggregate_lifting(self):
        node = bind(parse("SELECT a, SUM(b) AS total FROM t GROUP BY a"))
        project = node
        aggregate = project.child
        assert isinstance(aggregate, LogicalAggregate)
        assert aggregate.group_columns == ("a",)
        assert aggregate.aggregates[0].name == "total"

    def test_agg_without_groupby_is_global(self):
        node = bind(parse("SELECT COUNT(*) FROM t"))
        aggregate = node.child
        assert isinstance(aggregate, LogicalAggregate)
        assert aggregate.group_columns == ()

    def test_default_agg_names(self):
        node = bind(parse("SELECT COUNT(*), COUNT(*) FROM t"))
        names = [spec.name for spec in node.child.aggregates]
        assert len(set(names)) == 2

    def test_star_with_groupby_rejected(self):
        with pytest.raises(BindError):
            bind(parse("SELECT * FROM t GROUP BY a"))


class TestHaving:
    def test_parse_having(self):
        statement = parse(
            "SELECT a, COUNT(*) AS n FROM t GROUP BY a HAVING COUNT(*) > 5"
        )
        assert statement.having is not None

    def test_having_lifts_new_aggregate(self):
        node = bind(parse(
            "SELECT a FROM t GROUP BY a HAVING SUM(b) > 10"
        ))
        # Filter above Aggregate; a hidden SUM spec added
        filter_node = node.child
        assert isinstance(filter_node, LogicalFilter)
        aggregate = filter_node.child
        assert isinstance(aggregate, LogicalAggregate)
        assert any(s.name.startswith("_having") for s in aggregate.aggregates)

    def test_having_reuses_selected_aggregate(self):
        node = bind(parse(
            "SELECT a, COUNT(*) AS n FROM t GROUP BY a HAVING COUNT(*) > 5"
        ))
        aggregate = node.child.child
        assert isinstance(aggregate, LogicalAggregate)
        assert len(aggregate.aggregates) == 1  # reused, not duplicated

    def test_having_without_groupby_is_global(self):
        node = bind(parse("SELECT COUNT(*) AS n FROM t HAVING COUNT(*) > 0"))
        assert isinstance(node.child, LogicalFilter)

"""Tables (with OD check constraints) and sorted indexes."""
from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dependency import fd, od
from repro.engine.index import SortedIndex
from repro.engine.schema import Schema
from repro.engine.table import ConstraintViolation, Table
from repro.engine.types import DataType


def make_table(rows=()):
    table = Table("t", Schema.of(("a", DataType.INT), ("b", DataType.INT)))
    table.load(rows, check=False)
    return table


class TestTable:
    def test_insert_validates_width(self):
        with pytest.raises(ValueError):
            make_table().insert((1,))

    def test_insert_validates_types(self):
        with pytest.raises(TypeError):
            make_table().insert((1, "x"))

    def test_insert_dicts(self):
        table = Table("t", Schema.of(("a", DataType.INT), ("b", DataType.INT)))
        table.insert_dicts([{"b": 2, "a": 1}])
        assert table.rows == [(1, 2)]

    def test_declare_checks_existing_data(self):
        table = make_table([(1, 2), (2, 1)])
        with pytest.raises(ConstraintViolation) as excinfo:
            table.declare(od("a", "b"))
        assert "swap" in str(excinfo.value)

    def test_declare_split_message(self):
        table = make_table([(1, 1), (1, 2)])
        with pytest.raises(ConstraintViolation) as excinfo:
            table.declare(fd("a", "b"))
        assert "split" in str(excinfo.value)

    def test_load_checks_constraints(self):
        table = make_table()
        table.declare(od("a", "b"))
        with pytest.raises(ConstraintViolation):
            table.load([(1, 2), (2, 1)])

    def test_declare_unknown_column(self):
        with pytest.raises(KeyError):
            make_table().declare(od("a", "zzz"))

    def test_as_relation(self):
        relation = make_table([(1, 2)]).as_relation()
        assert relation.rows == [(1, 2)]
        assert tuple(relation.attributes) == ("a", "b")

    def test_column_values(self):
        assert make_table([(1, 2), (3, 4)]).column_values("b") == [2, 4]


class TestSortedIndex:
    def build(self, rows):
        table = make_table(rows)
        return SortedIndex("idx", table, ["a"]), table

    def test_full_scan_sorted(self):
        index, _ = self.build([(3, 0), (1, 0), (2, 0)])
        assert [row[0] for row in index.range_scan()] == [1, 2, 3]

    def test_range_inclusive(self):
        index, _ = self.build([(i, 0) for i in range(10)])
        got = [row[0] for row in index.range_scan((3,), (6,))]
        assert got == [3, 4, 5, 6]

    def test_open_ends(self):
        index, _ = self.build([(i, 0) for i in range(5)])
        assert [r[0] for r in index.range_scan(low=(3,))] == [3, 4]
        assert [r[0] for r in index.range_scan(high=(1,))] == [0, 1]

    def test_reverse(self):
        index, _ = self.build([(1, 0), (2, 0)])
        assert [r[0] for r in index.range_scan(reverse=True)] == [2, 1]

    def test_prefix_bounds_on_composite_key(self):
        table = Table(
            "t", Schema.of(("a", DataType.INT), ("b", DataType.INT))
        )
        table.load([(1, 1), (1, 2), (2, 1), (2, 2), (3, 1)], check=False)
        index = SortedIndex("idx", table, ["a", "b"])
        got = list(index.range_scan((1,), (2,)))
        assert got == [(1, 1), (1, 2), (2, 1), (2, 2)]

    def test_probe_min_max(self):
        index, _ = self.build([(i, i * 10) for i in range(10)])
        assert index.probe_min((4,), "b") == 40
        assert index.probe_max((4,), "b") == 40
        assert index.probe_min((99,), "b") is None
        assert index.probe_max((-1,), "b") is None

    def test_stale_rebuild(self):
        index, table = self.build([(1, 0)])
        assert len(index) == 1
        table.insert((0, 0))
        assert [r[0] for r in index.range_scan()] == [0, 1]

    @settings(max_examples=60)
    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 5)), max_size=30),
           st.integers(0, 20), st.integers(0, 20))
    def test_range_scan_vs_naive(self, rows, lo, hi):
        index, table = self.build(rows)
        got = sorted(index.range_scan((lo,), (hi,)))
        expected = sorted(row for row in table.rows if lo <= row[0] <= hi)
        assert got == expected

"""TopN operator + planner fusion, and table statistics."""
from __future__ import annotations

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.operators import Limit, SeqScan, Sort, TopN
from repro.engine.schema import Schema
from repro.engine.stats import ColumnStats, collect_stats
from repro.engine.table import Table
from repro.engine.types import DataType


def make_table(rows):
    table = Table("t", Schema.of(("a", DataType.INT), ("b", DataType.INT)))
    table.load(rows, check=False)
    return table


class TestTopNOperator:
    def test_matches_sort_limit(self):
        table = make_table([(5, 0), (3, 1), (9, 2), (1, 3), (3, 4)])
        fused, _ = TopN(SeqScan(table), ["a"], 3).run()
        reference, _ = Limit(Sort(SeqScan(table), ["a"]), 3).run()
        assert fused == reference

    def test_stable_on_ties(self):
        table = make_table([(1, 9), (1, 2), (1, 5)])
        rows, _ = TopN(SeqScan(table), ["a"], 2).run()
        assert rows == [(1, 9), (1, 2)]  # arrival order preserved

    def test_count_larger_than_input(self):
        table = make_table([(2, 0), (1, 0)])
        rows, _ = TopN(SeqScan(table), ["a"], 10).run()
        assert rows == [(1, 0), (2, 0)]

    def test_zero_count(self):
        table = make_table([(1, 0)])
        rows, metrics = TopN(SeqScan(table), ["a"], 0).run()
        assert rows == []

    def test_negative_count_rejected(self):
        table = make_table([])
        with pytest.raises(ValueError):
            TopN(SeqScan(table), ["a"], -1)

    def test_sort_rows_bounded_by_n(self):
        table = make_table([(i, 0) for i in range(1000)])
        _, metrics = TopN(SeqScan(table), ["a"], 10).run()
        assert metrics.get("sort_rows") <= 10

    def test_ordering_property(self):
        table = make_table([(1, 0)])
        op = TopN(SeqScan(table), ["a", "b"], 5)
        assert op.ordering == ("t.a", "t.b")

    @settings(max_examples=60)
    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=30),
           st.integers(0, 10))
    def test_property_matches_reference(self, rows, n):
        table = make_table(rows)
        fused, _ = TopN(SeqScan(table), ["a", "b"], n).run()
        reference, _ = Limit(Sort(SeqScan(table), ["a", "b"]), n).run()
        # Sort is stable; TopN breaks key-ties by arrival too — but rows
        # with fully equal sort keys may still differ in non-key columns;
        # here the key is the whole row, so outputs must match exactly.
        assert fused == reference


class TestPlannerFusion:
    @pytest.fixture(scope="class")
    def db(self):
        from repro.engine.database import Database

        database = Database()
        table = database.create_table(
            "t", Schema.of(("a", DataType.INT), ("b", DataType.INT))
        )
        table.load([(i * 7 % 100, i) for i in range(200)])
        database.create_index("t_a", "t", ["a"])
        return database

    def test_fuses_when_order_not_satisfied(self, db):
        result = db.execute("SELECT b FROM t ORDER BY b LIMIT 5")
        assert "TopN" in result.plan.explain()
        assert [r[0] for r in result.rows] == [0, 1, 2, 3, 4]

    def test_no_heap_when_index_satisfies(self, db):
        result = db.execute("SELECT a FROM t ORDER BY a LIMIT 5")
        text = result.plan.explain()
        assert "TopN" not in text and "Sort" not in text
        values = sorted(db.table("t").column_values("a"))[:5]
        assert [r[0] for r in result.rows] == values

    def test_naive_mode_keeps_sort(self, db):
        from repro.engine.logical import bind
        from repro.engine.sql.parser import parse
        from repro.optimizer.planner import Planner

        plan = Planner(db, mode="naive").plan(
            bind(parse("SELECT b FROM t ORDER BY b LIMIT 5"))
        )
        assert "Sort" in plan.explain()


class TestStats:
    def test_collect(self):
        table = make_table([(1, 5), (2, 5), (2, 7)])
        stats = collect_stats(table)
        assert stats.row_count == 3
        a = stats.column("a")
        assert (a.distinct, a.minimum, a.maximum) == (2, 1, 2)
        assert a.histogram is not None and a.histogram.total == 3
        assert stats.column("b").distinct == 2

    def test_empty_table(self):
        stats = collect_stats(make_table([]))
        assert stats.row_count == 0
        assert stats.column("a").minimum is None

    def test_range_selectivity_numeric(self):
        stats = ColumnStats(distinct=10, minimum=0, maximum=100)
        assert stats.range_selectivity(0, 100) == 1.0
        assert stats.range_selectivity(0, 50) == pytest.approx(0.5)
        assert stats.range_selectivity(200, 300) == 0.0

    def test_range_selectivity_dates(self):
        stats = ColumnStats(
            distinct=365,
            minimum=datetime.date(2000, 1, 1),
            maximum=datetime.date(2000, 12, 31),
        )
        half = stats.range_selectivity(
            datetime.date(2000, 1, 1), datetime.date(2000, 7, 1)
        )
        assert 0.4 < half < 0.6

    def test_range_selectivity_non_numeric(self):
        stats = ColumnStats(distinct=3, minimum="a", maximum="z")
        assert 0.0 < stats.range_selectivity("a", "m") <= 1.0

    def test_equality_selectivity(self):
        assert ColumnStats(4, 0, 10).equality_selectivity() == 0.25
        assert ColumnStats(0, None, None).equality_selectivity() == 1.0

    def test_database_stats_cached_within_epoch(self):
        from repro.engine.database import Database

        db = Database()
        table = db.create_table("t", Schema.of(("a", DataType.INT)))
        table.load([(1,)])
        first = db.stats("t")
        assert db.stats("t") is first            # cached: no mutation between

    def test_database_stats_invalidated_by_insert(self):
        """Regression: stats used to be cached per table name forever, so
        an insert left row counts stale until a manual refresh.  They are
        epoch-keyed now — any mutation recollects on next request."""
        from repro.engine.database import Database

        db = Database()
        table = db.create_table("t", Schema.of(("a", DataType.INT)))
        table.load([(1,)])
        first = db.stats("t")
        assert first.row_count == 1
        table.load([(2,)])                       # bumps the catalog epoch
        assert db.stats("t").row_count == 2      # fresh, no refresh needed
        assert db.stats("t").column("a").maximum == 2

    def test_database_stats_invalidated_by_ddl(self):
        from repro.engine.database import Database

        db = Database()
        table = db.create_table("t", Schema.of(("a", DataType.INT)))
        table.load([(1,), (3,)])
        first = db.stats("t")
        db.create_table("u", Schema.of(("b", DataType.INT)))  # epoch bump
        assert db.stats("t") is not first        # recollected post-DDL
        assert db.stats("t").row_count == 2      # same data, fresh pass

"""Type validation and schema resolution."""
from __future__ import annotations

import datetime

import pytest

from repro.engine.schema import Column, Schema
from repro.engine.types import DataType, validate_value


class TestValidateValue:
    def test_int(self):
        assert validate_value(3, DataType.INT) == 3

    def test_int_rejects_bool(self):
        with pytest.raises(TypeError):
            validate_value(True, DataType.INT)

    def test_float_accepts_int(self):
        assert validate_value(3, DataType.FLOAT) == 3.0
        assert isinstance(validate_value(3, DataType.FLOAT), float)

    def test_str(self):
        assert validate_value("x", DataType.STR) == "x"
        with pytest.raises(TypeError):
            validate_value(1, DataType.STR)

    def test_bool(self):
        assert validate_value(False, DataType.BOOL) is False
        with pytest.raises(TypeError):
            validate_value(0, DataType.BOOL)

    def test_date_from_iso(self):
        assert validate_value("2001-02-03", DataType.DATE) == datetime.date(2001, 2, 3)

    def test_date_native(self):
        day = datetime.date(2001, 2, 3)
        assert validate_value(day, DataType.DATE) is day

    def test_null_rejected(self):
        with pytest.raises(TypeError):
            validate_value(None, DataType.INT)


class TestSchema:
    def make(self):
        return Schema.of(("t.a", DataType.INT), ("t.b", DataType.STR), ("c", DataType.INT))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Schema.of(("a", DataType.INT), ("a", DataType.INT))

    def test_position(self):
        assert self.make().position("t.b") == 1

    def test_resolve_exact(self):
        assert self.make().resolve("t.a") == "t.a"

    def test_resolve_suffix(self):
        assert self.make().resolve("a") == "t.a"

    def test_resolve_missing(self):
        with pytest.raises(KeyError):
            self.make().resolve("zzz")

    def test_resolve_ambiguous(self):
        schema = Schema.of(("t.a", DataType.INT), ("u.a", DataType.INT))
        with pytest.raises(ValueError):
            schema.resolve("a")

    def test_concat(self):
        joined = self.make().concat(Schema.of(("d", DataType.INT)))
        assert joined.names == ("t.a", "t.b", "c", "d")

    def test_rename(self):
        renamed = self.make().rename(["x", "y", "z"])
        assert renamed.names == ("x", "y", "z")
        assert renamed.columns[0].dtype is DataType.INT

    def test_select(self):
        sub = self.make().select(["c", "a"])
        assert sub.names == ("c", "t.a")

    def test_dtype_of(self):
        assert self.make().dtype_of("b") is DataType.STR

"""Theorem 13 / Lemma 1 / Theorem 16: the FD ↔ OD correspondence."""
from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attrs import AttrList
from repro.core.dependency import FunctionalDependency, od
from repro.core.inference import ODTheory
from repro.core.relation import Relation
from repro.core.satisfaction import satisfies
from repro.fd.bridge import (
    armstrong_rules_via_ods,
    fd_to_od,
    fds_of,
    od_to_fd,
    theory_fd_implies,
)

NAMES = ("A", "B", "C")
rows = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 2), st.integers(0, 2)), max_size=8
)
sides = st.lists(st.sampled_from(NAMES), max_size=2, unique=True)
fds_st = st.builds(FunctionalDependency, sides, sides)


class TestTheorem13OnData:
    """On any instance: the FD holds iff its OD encoding holds."""

    @settings(max_examples=150)
    @given(rows, fds_st)
    def test_fd_iff_encoded_od(self, data, dependency):
        relation = Relation(AttrList(NAMES), data)
        assert satisfies(relation, dependency) == satisfies(
            relation, fd_to_od(dependency)
        )

    @settings(max_examples=100)
    @given(rows, fds_st)
    def test_any_lhs_permutation_equivalent(self, data, dependency):
        """Permutation (Theorem 14): every list encoding of the same FD
        agrees on every instance."""
        import itertools

        relation = Relation(AttrList(NAMES), data)
        outcomes = set()
        for lhs_perm in itertools.permutations(dependency.lhs):
            lhs = AttrList(lhs_perm)
            encoded = od(lhs, lhs + AttrList(dependency.rhs))
            outcomes.add(satisfies(relation, encoded))
        assert len(outcomes) == 1


class TestLemma1:
    @settings(max_examples=100)
    @given(rows, st.builds(
        od,
        st.lists(st.sampled_from(NAMES), max_size=2, unique=True).map(AttrList),
        st.lists(st.sampled_from(NAMES), max_size=2, unique=True).map(AttrList),
    ))
    def test_od_implies_fd_on_data(self, data, dependency):
        relation = Relation(AttrList(NAMES), data)
        if satisfies(relation, dependency):
            assert satisfies(relation, od_to_fd(dependency))

    def test_converse_fails(self):
        relation = Relation(AttrList(["A", "B"]), [(1, 2), (2, 1)])
        assert satisfies(relation, od_to_fd(od("A", "B")))
        assert not satisfies(relation, od("A", "B"))


class TestTheorem16:
    def test_armstrong_axioms(self):
        assert armstrong_rules_via_ods(("A",), ("B",), ("C",)) == (True, True, True)
        assert armstrong_rules_via_ods(("A", "B"), ("C",), ("D",)) == (
            True, True, True,
        )

    @settings(max_examples=80, deadline=None)
    @given(st.lists(fds_st, max_size=3), fds_st)
    def test_oracle_equals_classical(self, premises, goal):
        from repro.fd.closure import fd_implies

        theory = ODTheory(premises)
        assert theory_fd_implies(theory, goal) == fd_implies(premises, goal)


class TestFdsOf:
    def test_expands_statements(self):
        from repro.core.dependency import equiv

        out = fds_of([od("A", "B"), equiv("B", "C")])
        assert FunctionalDependency(("A",), ("B",)) in out
        assert len(out) == 3

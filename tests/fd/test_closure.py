"""Classical FD closure, implication, and keys."""
from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dependency import FunctionalDependency, fd
from repro.fd.closure import (
    attribute_closure,
    candidate_keys,
    fd_implies,
    is_superkey,
)

NAMES = ("A", "B", "C", "D")
sides = st.lists(st.sampled_from(NAMES), max_size=2, unique=True)
fds = st.builds(FunctionalDependency, sides, sides)


class TestClosure:
    def test_simple_chain(self):
        premises = [fd("A", "B"), fd("B", "C")]
        assert attribute_closure(["A"], premises) == {"A", "B", "C"}

    def test_composite_lhs(self):
        premises = [fd("A,B", "C")]
        assert attribute_closure(["A"], premises) == {"A"}
        assert attribute_closure(["A", "B"], premises) == {"A", "B", "C"}

    def test_reflexive_base(self):
        assert attribute_closure(["A", "B"], []) == {"A", "B"}

    @settings(max_examples=100)
    @given(st.lists(fds, max_size=4), st.sets(st.sampled_from(NAMES), max_size=3))
    def test_closure_vs_bruteforce(self, premises, base):
        """Fixpoint closure == naive saturation."""
        closed = set(base)
        changed = True
        while changed:
            changed = False
            for dependency in premises:
                if set(dependency.lhs) <= closed and not set(dependency.rhs) <= closed:
                    closed |= set(dependency.rhs)
                    changed = True
        assert attribute_closure(base, premises) == closed

    @settings(max_examples=100)
    @given(st.lists(fds, max_size=3), fds)
    def test_implication_via_closure(self, premises, goal):
        assert fd_implies(premises, goal) == (
            set(goal.rhs) <= attribute_closure(goal.lhs, premises)
        )


class TestKeys:
    def test_single_key(self):
        premises = [fd("A", "B"), fd("A", "C"), fd("A", "D")]
        assert candidate_keys(NAMES, premises) == [frozenset({"A"})]

    def test_two_keys(self):
        premises = [fd("A", "B,C,D"), fd("B", "A,C,D")]
        keys = candidate_keys(NAMES, premises)
        assert frozenset({"A"}) in keys and frozenset({"B"}) in keys
        assert len(keys) == 2

    def test_whole_schema_when_no_fds(self):
        assert candidate_keys(("A", "B"), []) == [frozenset({"A", "B"})]

    def test_keys_are_minimal_superkeys(self):
        premises = [fd("A,B", "C"), fd("C", "D")]
        for key in candidate_keys(NAMES, premises):
            assert is_superkey(key, NAMES, premises)
            for attribute in key:
                assert not is_superkey(key - {attribute}, NAMES, premises)

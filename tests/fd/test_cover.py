"""Minimal covers: equivalence, minimality, determinism."""
from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dependency import FunctionalDependency, fd
from repro.fd.closure import fd_implies
from repro.fd.cover import equivalent_covers, minimal_cover, singleton_rhs

NAMES = ("A", "B", "C", "D")
sides = st.lists(st.sampled_from(NAMES), max_size=2, unique=True)
fds = st.builds(FunctionalDependency, sides, sides)


class TestSingletonRhs:
    def test_splits(self):
        out = singleton_rhs([fd("A", "B,C")])
        assert set(out) == {fd("A", "B"), fd("A", "C")}

    def test_drops_trivial(self):
        assert singleton_rhs([fd("A", "A")]) == []
        assert singleton_rhs([fd("A,B", "B,C")]) == [fd("A,B", "C")]


class TestMinimalCover:
    def test_removes_redundant_fd(self):
        cover = minimal_cover([fd("A", "B"), fd("B", "C"), fd("A", "C")])
        assert fd("A", "C") not in cover
        assert len(cover) == 2

    def test_trims_extraneous_lhs(self):
        cover = minimal_cover([fd("A", "B"), fd("A,B", "C")])
        assert fd("A", "C") in cover

    @settings(max_examples=100, deadline=None)
    @given(st.lists(fds, max_size=4))
    def test_cover_is_equivalent(self, premises):
        cover = minimal_cover(premises)
        assert equivalent_covers(premises, cover)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(fds, max_size=4))
    def test_cover_has_no_redundancy(self, premises):
        cover = minimal_cover(premises)
        for i, dependency in enumerate(cover):
            rest = cover[:i] + cover[i + 1:]
            assert not fd_implies(rest, dependency)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(fds, max_size=4))
    def test_singleton_rhs_form(self, premises):
        for dependency in minimal_cover(premises):
            assert len(dependency.rhs) == 1


class TestEquivalentCovers:
    def test_positive(self):
        assert equivalent_covers(
            [fd("A", "B,C")], [fd("A", "B"), fd("A", "C")]
        )

    def test_negative(self):
        assert not equivalent_covers([fd("A", "B")], [fd("B", "A")])

"""Benchmark-trajectory regression gate (ROADMAP "Benchmark trajectory").

The benchmark harness dumps per-case timings to committed
``BENCH_<module>.json`` files.  This test re-times cheap, data-independent
proxies for a few headline cases and fails if they regress beyond a
*generous* tolerance of the committed baseline — wide enough that CI-host
variance never trips it, tight enough that an accidental O(n) → O(n²) on
a hot path does.

Planning- and inference-time cases are checked against their committed
absolute timings: they are independent of data volume, so tiny fixtures
reproduce the baseline's regime.  The vectorized-execution case is
volume-dependent, so its proxy checks the *ratio* (batch vs row rows/sec
on a small fixture) instead of an absolute time — ratios survive CI-host
speed differences — plus the committed baseline's own recorded ratio.
"""
from __future__ import annotations

import json
import pathlib
import time

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[2]

#: Allowed slowdown over the committed mean.  Generous on purpose: the
#: baselines were recorded on one laptop; CI machines differ by small
#: integer factors, real regressions by large ones.
TOLERANCE = 12.0


def _baseline(module: str, case: str) -> float:
    path = ROOT / f"BENCH_{module}.json"
    if not path.exists():
        pytest.skip(f"no committed baseline {path.name}")
    entries = json.loads(path.read_text())
    if case not in entries or entries[case].get("mean_s") is None:
        pytest.skip(f"{path.name} has no timing for {case}")
    return float(entries[case]["mean_s"])


def _best_of(fn, rounds: int = 5) -> float:
    """Minimum wall time of ``fn()`` over several rounds (noise floor)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _check(measured: float, baseline: float, label: str) -> None:
    limit = baseline * TOLERANCE
    assert measured <= limit, (
        f"{label}: {measured * 1e3:.3f}ms vs baseline {baseline * 1e3:.3f}ms "
        f"(limit {limit * 1e3:.3f}ms, tolerance {TOLERANCE}x) — "
        "a hot path regressed"
    )


def _fact_pipeline(seed: int, rows: int = 20_000):
    """The small scan→filter→aggregate fixture the execution-mode proxies
    share (vectorized and parallel): returns a zero-arg pipeline builder
    over a freshly generated fact table — the *same* workload shape the
    benchmarks measure (``repro.workloads.microbench``), so the committed
    baselines and these proxies can never drift apart."""
    from repro.workloads.microbench import build_fact, scan_filter_aggregate

    table = build_fact(rows, seed=seed)
    return lambda: scan_filter_aggregate(table)


@pytest.fixture(scope="module")
def tiny_tpcds():
    from repro.workloads.tpcds_lite import build_tpcds_lite

    # Planning time does not depend on row counts, only on the catalog.
    return build_tpcds_lite(days=90, sales_rows=300, items=20, stores=4)


def _q9(workload) -> str:
    from repro.workloads.tpcds_lite import DATE_QUERIES

    lo, hi = workload.date_range(20, 30)
    return dict(DATE_QUERIES)["Q9"].format(lo=lo, hi=hi)


def test_warm_template_planning_not_regressed(tiny_tpcds):
    """Proxy for bench_engine::test_repeated_template_planning_warm."""
    baseline = _baseline("bench_engine", "test_repeated_template_planning_warm")
    sql = _q9(tiny_tpcds)
    database = tiny_tpcds.database
    database.plan(sql, use_cache=False)  # warm the theories first

    measured = _best_of(
        lambda: [database.plan(sql, use_cache=False) for _ in range(10)]
    )
    _check(measured, baseline, "warm repeated-template planning (10 plans)")


def test_plan_cache_warm_not_regressed(tiny_tpcds):
    """Proxy for bench_plan_cache::test_repeated_template_plan_cache_warm,
    plus the tentpole claim itself: cached planning beats uncached warm
    planning by a wide margin."""
    baseline = _baseline("bench_plan_cache", "test_repeated_template_plan_cache_warm")
    sql = _q9(tiny_tpcds)
    database = tiny_tpcds.database
    database.plan(sql)

    measured = _best_of(lambda: [database.plan(sql) for _ in range(10)])
    _check(measured, baseline, "plan-cache warm repeated planning (10 plans)")

    uncached = _best_of(lambda: [database.plan(sql, use_cache=False) for _ in range(10)])
    assert measured * 5 < uncached, (
        f"plan cache lost its edge: warm {measured * 1e3:.3f}ms vs "
        f"uncached {uncached * 1e3:.3f}ms"
    )


def test_oracle_chain_implication_not_regressed():
    """Proxy for bench_inference::test_implication_scaling_chain[8]."""
    from repro.core.dependency import od
    from repro.core.inference import ODTheory

    baseline = _baseline("bench_inference", "test_implication_scaling_chain[8]")
    theory = ODTheory(
        [od(f"c{i}", f"c{i + 1}") for i in range(7)], max_attributes=40
    )
    goal = od("c0", "c7")
    assert theory.implies(goal)

    iterations = 200
    measured = _best_of(
        lambda: [theory.implies(goal) for _ in range(iterations)]
    ) / iterations
    _check(measured, baseline, "chain implication (width 8)")


def test_vectorized_throughput_not_regressed():
    """Proxy for bench_vectorized::test_scan_filter_aggregate_*.

    Two gates: (1) the committed baseline must still document the ≥5×
    batch-vs-row claim at batch_size=1024 (the file is the acceptance
    record — a refresh that loses the edge should fail loudly); (2) a
    small live fixture must reproduce a conservative 2.5× of it here, so
    an accidental de-vectorization (e.g. an operator falling back to the
    row adapter) trips CI even on slow, noisy hosts.
    """
    row_baseline = _baseline("bench_vectorized", "test_scan_filter_aggregate_row")
    batch_baseline = _baseline(
        "bench_vectorized", "test_scan_filter_aggregate_batch[1024]"
    )
    assert row_baseline >= 5.0 * batch_baseline, (
        f"committed baseline lost the vectorized edge: row "
        f"{row_baseline * 1e3:.1f}ms vs batch[1024] "
        f"{batch_baseline * 1e3:.1f}ms (< 5x)"
    )

    pipeline = _fact_pipeline(seed=23)
    assert pipeline().run_batches(1024)[0] == pipeline().run()[0]
    row_s = _best_of(lambda: pipeline().run())
    batch_s = _best_of(lambda: pipeline().run_batches(1024))
    assert batch_s * 2.5 < row_s, (
        f"vectorized execution lost its edge: batch[1024] "
        f"{batch_s * 1e3:.2f}ms vs row {row_s * 1e3:.2f}ms "
        f"({row_s / batch_s:.2f}x, gate 2.5x)"
    )


#: Which host-capability flag says "this backend can actually scale":
#: ``thread`` needs a multi-core free-threaded build; ``process`` escapes
#: the GIL per-interpreter, so it only needs multiple cores.
_BACKEND_CAPABILITY = {"thread": "parallel_capable", "process": "process_capable"}

#: Overhead floors where the capability is absent, mirroring
#: ``benchmarks/bench_parallel.py::OVERHEAD_FLOOR`` with CI-noise slack:
#: the thread pool adds only scheduling overhead, while the process
#: backend still pays its full serialization bill (chains out, morsels
#: back) with zero offsetting parallelism on a saturated host, so its
#: honest bound is wider.  Committed-baseline floors first, live floors
#: second (live re-times on a noisy shared CI core).
_COMMITTED_FLOOR = {"thread": 0.5, "process": 0.25}
_LIVE_FLOOR = {"thread": 0.4, "process": 0.2}


def test_parallel_execution_not_regressed():
    """Proxy for bench_parallel::*, per exchange backend.

    Ratio-based and capability-aware — thread parallelism for pure-Python
    work exists only on multi-core free-threaded builds, and process
    parallelism only with multiple cores:

    1. the committed baseline must document each backend's
       ``test_parallel_scaling_claim[<backend>]`` honestly — if it was
       recorded where the backend-appropriate capability held, the
       recorded workers=4 speedup must be ≥1.5×; if not, the recorded
       overhead must stay within the backend's floor
       (``_COMMITTED_FLOOR``);
    2. live, on a small fixture, for both backends: parallel execution
       must stay bit-identical and counter-identical to serial, and the
       exchange machinery's overhead must stay bounded (workers=4 within
       the backend's ``_LIVE_FLOOR`` of workers=1 — wide enough for CI
       noise, tight enough that an accidental re-sort, re-scan, or
       serialization of the whole stream through a busy lock trips it);
    3. live, when *this* host has the backend's capability: workers=4
       must beat workers=1 by a conservative 1.3× (the bench asserts the
       full 1.5× where the baseline is recorded).
    """
    import json as _json

    path = ROOT / "BENCH_bench_parallel.json"
    if not path.exists():
        pytest.skip("no committed baseline BENCH_bench_parallel.json")
    entries = _json.loads(path.read_text())
    claims_checked = 0
    for case, entry in sorted(entries.items()):
        if not case.startswith("test_parallel_scaling_claim"):
            continue
        claim = entry.get("extra_info", {})
        recorded_speedup = claim.get("speedup_workers4_vs_1")
        if recorded_speedup is None:
            continue
        claims_checked += 1
        backend = claim.get("backend", "thread")
        capability_key = _BACKEND_CAPABILITY.get(backend, "parallel_capable")
        if claim.get(capability_key):
            assert recorded_speedup >= 1.5, (
                f"committed baseline lost the parallel edge: {backend} "
                f"workers=4 only {recorded_speedup}x on a capable "
                "recording host"
            )
        else:
            floor = _COMMITTED_FLOOR.get(backend, 0.5)
            assert recorded_speedup >= floor, (
                f"committed baseline documents out-of-bounds {backend} "
                f"parallel overhead: {recorded_speedup}x (floor {floor}x)"
            )
    assert claims_checked > 0, (
        "BENCH_bench_parallel.json carries no scaling claim — the "
        "acceptance record went missing"
    )

    from repro.engine.parallel import host_capability, insert_exchanges

    capability = host_capability()
    pipeline = _fact_pipeline(seed=29)
    serial_rows, serial_metrics = pipeline().run_batches(1024)
    for backend, capability_key in _BACKEND_CAPABILITY.items():
        for workers in (1, 4):
            par_rows, par_metrics = insert_exchanges(
                pipeline(), workers, backend=backend
            ).run_batches(1024)
            assert par_rows == serial_rows, (
                f"{backend} workers={workers}: rows differ"
            )
            assert par_metrics.counters == serial_metrics.counters, (
                f"{backend} workers={workers}: counters differ"
            )

        one_s = _best_of(
            lambda: insert_exchanges(pipeline(), 1, backend=backend).run_batches(1024)
        )
        four_s = _best_of(
            lambda: insert_exchanges(pipeline(), 4, backend=backend).run_batches(1024)
        )
        live_speedup = one_s / four_s
        live_floor = _LIVE_FLOOR[backend]
        assert live_speedup >= live_floor, (
            f"{backend} parallel execution overhead regressed: workers=4 is "
            f"{live_speedup:.2f}x of workers=1 (floor {live_floor}x) — "
            f"{four_s * 1e3:.2f}ms vs {one_s * 1e3:.2f}ms"
        )
        if capability[capability_key]:
            assert live_speedup >= 1.3, (
                f"{backend} parallel execution lost its edge on a capable "
                f"host: workers=4 only {live_speedup:.2f}x of workers=1 "
                "(gate 1.3x)"
            )


def test_joinorder_not_regressed():
    """Proxy for bench_joinorder::test_joinorder_claim.

    1. the committed baseline must document the join-ordering edge: on
       the planted-win snowflake templates the syntactic plans do ≥1.5×
       the reordered plans' deterministic ``Metrics.work``;
    2. live, on a tiny snowflake fixture: identical result multisets and
       a conservative 1.3× aggregate work ratio, plus the planted sort
       elimination itself (SN3: zero sorts reordered, one syntactic) —
       ``Metrics.work`` is exact on every host, so a search regression
       (quietly falling back to parse order, losing the order-providing
       probe) trips CI deterministically.
    """
    import json as _json

    path = ROOT / "BENCH_bench_joinorder.json"
    if not path.exists():
        pytest.skip("no committed baseline BENCH_bench_joinorder.json")
    entries = _json.loads(path.read_text())
    claim = entries.get("test_joinorder_claim", {}).get("extra_info", {})
    recorded_ratio = claim.get("work_ratio_syntactic_vs_cost")
    if recorded_ratio is not None:
        assert recorded_ratio >= 1.5, (
            f"committed baseline lost the join-ordering edge: work ratio "
            f"only {recorded_ratio}x on the planted-win queries"
        )

    from repro.workloads.snowflake import SNOWFLAKE_QUERIES, build_snowflake

    workload = build_snowflake(
        days=120, sales_rows=3_000, items=60, brands=12, stores=8
    )
    db = workload.database
    lo, hi = workload.date_range(30, 40)
    templates = {qid: template for qid, template, _ in SNOWFLAKE_QUERIES}
    cost_work = syn_work = 0.0
    for qid in ("SN2", "SN3", "SN5", "SN6"):
        sql = templates[qid].format(lo=lo, hi=hi)
        cost = db.execute(sql)
        syn = db.execute(sql, join_order="syntactic")
        assert sorted(cost.rows, key=repr) == sorted(syn.rows, key=repr), qid
        cost_work += cost.metrics.work
        syn_work += syn.metrics.work
    assert syn_work >= 1.3 * cost_work, (
        f"join-ordering lost its edge: syntactic/cost work ratio "
        f"{syn_work / cost_work:.2f}x (gate 1.3x)"
    )

    sn3 = templates["SN3"].format(lo=lo, hi=hi)
    assert db.execute(sn3).metrics.get("sorts") == 0, (
        "the reordered SN3 plan no longer eliminates its sort"
    )
    assert db.execute(sn3, join_order="syntactic").metrics.get("sorts") == 1


def test_rewrites_not_regressed():
    """Proxy for bench_rewrites::test_rewrites_claim.

    1. the committed baseline must document each rewrite rule's edge on
       its planted-win query — eager aggregation ≥1.5×, scan
       consolidation ≥1.2×, FD join elimination ≥1.5× in deterministic
       ``Metrics.work`` (off vs on);
    2. live, on a tiny rewrite_pack fixture: every rule still fires on
       its planted query (and only with the pack on), the on/off result
       multisets are identical, and conservative work ratios hold
       (1.3× / 1.1× / 1.3× — ``work`` is exact on every host, so a
       rewrite regression — a rule silently not firing, a proof gate
       accidentally always false — trips CI deterministically.
    """
    import json as _json

    path = ROOT / "BENCH_bench_rewrites.json"
    if not path.exists():
        pytest.skip("no committed baseline BENCH_bench_rewrites.json")
    entries = _json.loads(path.read_text())
    claim = entries.get("test_rewrites_claim", {}).get("extra_info", {})
    bars = {
        "eager-agg": 1.5,
        "scan-consolidation": 1.2,
        "join-elimination": 1.5,
    }
    for rule, bar in bars.items():
        recorded = claim.get(f"work_ratio_off_vs_on_{rule}")
        assert recorded is not None, (
            f"BENCH_bench_rewrites.json carries no {rule} claim — the "
            "acceptance record went missing"
        )
        assert recorded >= bar, (
            f"committed baseline lost the {rule} edge: off/on work ratio "
            f"only {recorded}x (acceptance bar: {bar}x)"
        )

    from repro.workloads.rewrite_pack import (
        REWRITE_PACK_QUERIES,
        build_rewrite_pack,
    )

    db = build_rewrite_pack(
        fact_rows=3_000, wide_rows=2_000, order_rows=3_000, customers=1_500
    )
    live_bars = {"RW1": 1.3, "RW2": 1.1, "RW3": 1.3}
    planted = {
        "RW1": "eager-agg",
        "RW2": "scan-consolidation",
        "RW3": "join-elimination",
    }
    for qid, sql, _ in REWRITE_PACK_QUERIES:
        on = db.execute(sql)
        off = db.execute(sql, rewrites="off")
        assert sorted(on.rows, key=repr) == sorted(off.rows, key=repr), qid
        assert [r.rule for r in on.plan.plan_info.rewrites] == [planted[qid]], (
            f"{qid}: the {planted[qid]} rule no longer fires on its "
            "planted-win query"
        )
        assert off.plan.plan_info.rewrites == [], qid
        live_ratio = off.metrics.work / on.metrics.work
        assert live_ratio >= live_bars[qid], (
            f"{qid}: {planted[qid]} lost its live edge — off/on work "
            f"ratio {live_ratio:.2f}x (gate {live_bars[qid]}x)"
        )


def test_stats_not_regressed():
    """Proxy for bench_stats::test_stats_qerror_claim.

    1. the committed baseline must document the estimation edge: on the
       skewed snowflake templates the histogram mode's median Q-error
       beats the uniform baseline's, and the planted SK1 join-order flip
       is recorded with measurably cheaper work (≥1.1×);
    2. live, on a tiny skewed snowflake fixture: identical result rows
       under both estimation modes (estimates must never change
       answers), a strictly better live median Q-error, and the SK1 flip
       itself — different join orders with the histogram-chosen order no
       more expensive in deterministic ``Metrics.work``.  A statistics
       regression (histograms silently ignored, the merge bound falling
       back to containment, the covered-predicate fix lost) trips CI
       deterministically.
    """
    import json as _json
    import statistics

    path = ROOT / "BENCH_bench_stats.json"
    if not path.exists():
        pytest.skip("no committed baseline BENCH_bench_stats.json")
    entries = _json.loads(path.read_text())
    claim = entries.get("test_stats_qerror_claim", {}).get("extra_info", {})
    recorded_uniform = claim.get("median_q_uniform")
    recorded_histogram = claim.get("median_q_histogram")
    if recorded_uniform is not None and recorded_histogram is not None:
        assert recorded_histogram < recorded_uniform, (
            f"committed baseline lost the estimation edge: median Q-error "
            f"{recorded_histogram} (histogram) vs {recorded_uniform} (uniform)"
        )
    recorded_flip_ratio = claim.get("flip_work_ratio")
    if recorded_flip_ratio is not None:
        assert claim.get("flip_uniform_order") != claim.get(
            "flip_histogram_order"
        ), "committed baseline no longer records the SK1 join-order flip"
        assert recorded_flip_ratio >= 1.1, (
            f"committed baseline's SK1 flip is no longer measurably "
            f"cheaper: {recorded_flip_ratio}x (gate 1.1x)"
        )

    from repro.engine.stats import set_estimation_mode
    from repro.optimizer.costing import estimate_plan
    from repro.workloads.snowflake import build_snowflake, skewed_query_sql

    def canon(rows):
        # Different join orders accumulate float SUMs in different
        # orders; compare up to last-ulp noise.
        return sorted(
            (
                tuple(
                    round(v, 6) if isinstance(v, float) else v for v in row
                )
                for row in rows
            ),
            key=repr,
        )

    workload = build_snowflake(
        days=120, sales_rows=3_000, items=60, brands=12, stores=8
    )
    db = workload.database
    sqls = skewed_query_sql(workload)
    measured = {}
    for mode in ("uniform", "histogram"):
        previous = set_estimation_mode(mode)
        try:
            out = {}
            for qid, sql in sqls.items():
                plan = db.plan(sql, use_cache=False)
                estimate = max(1.0, estimate_plan(db, plan).rows)
                orders = tuple(
                    d.chosen for d in plan.plan_info.join_orders
                )
                result = db.execute(sql, use_cache=False)
                actual = max(1, len(result.rows))
                out[qid] = {
                    "qerror": max(estimate / actual, actual / estimate),
                    "orders": orders,
                    "work": result.metrics.work,
                    "rows": canon(result.rows),
                }
            measured[mode] = out
        finally:
            set_estimation_mode(previous)
    uniform, histogram = measured["uniform"], measured["histogram"]

    for qid in sqls:
        assert uniform[qid]["rows"] == histogram[qid]["rows"], (
            f"{qid}: result rows differ between estimation modes"
        )
    live_uniform = statistics.median(e["qerror"] for e in uniform.values())
    live_histogram = statistics.median(e["qerror"] for e in histogram.values())
    assert live_histogram < live_uniform, (
        f"histogram statistics lost their live edge: median Q-error "
        f"{live_histogram:.2f} vs uniform {live_uniform:.2f}"
    )
    assert uniform["SK1"]["orders"] != histogram["SK1"]["orders"], (
        "SK1 no longer flips its join order between estimation modes"
    )
    assert histogram["SK1"]["work"] <= uniform["SK1"]["work"], (
        f"the SK1 flip picked a pricier plan: histogram-order work "
        f"{histogram['SK1']['work']:.0f} vs uniform-order "
        f"{uniform['SK1']['work']:.0f}"
    )


def test_faults_not_regressed():
    """Proxy for bench_faults::*.

    1. the committed baseline must document the cancellation-overhead
       acceptance claim (<2% on scan→filter→aggregate) and carry timings
       for every recovery scenario (fault-free, kill-and-retry,
       degrade-to-thread) — the file is the acceptance record;
    2. live, on a small fixture: a killed worker is recovered with rows
       and counters bit-identical to serial (and the recovery really
       happened — ``exchange_stats`` records the retry), so a regression
       in the retry/redispatch machinery trips CI deterministically;
    3. live, the cancellation check stays cheap — a wide 1.5× gate (CI
       hosts are noisy at these millisecond scales; the tight <1.02 bar
       is asserted where the baseline is recorded) that still trips if a
       per-row time syscall or similar lands on the hot path.
    """
    import json as _json

    path = ROOT / "BENCH_bench_faults.json"
    if not path.exists():
        pytest.skip("no committed baseline BENCH_bench_faults.json")
    entries = _json.loads(path.read_text())
    claim = entries.get("test_cancellation_check_overhead_claim", {}).get(
        "extra_info", {}
    )
    recorded_overhead = claim.get("cancel_check_overhead")
    assert recorded_overhead is not None, (
        "BENCH_bench_faults.json carries no cancellation-overhead claim — "
        "the acceptance record went missing"
    )
    assert recorded_overhead < 1.02, (
        f"committed baseline documents {recorded_overhead}x cancellation "
        "overhead (acceptance bar: <2%)"
    )
    for scenario in (
        "test_fault_free_process",
        "test_kill_one_worker_and_retry",
        "test_degrade_to_thread",
    ):
        assert entries.get(scenario, {}).get("mean_s") is not None, (
            f"BENCH_bench_faults.json lost its {scenario} recovery timing"
        )

    from repro.engine import faults
    from repro.engine.errors import CancelToken
    from repro.engine.parallel import insert_exchanges

    pipeline = _fact_pipeline(seed=31)
    serial_rows, serial_metrics = pipeline().run_batches(1024)

    # Live kill-recovery: bit- and counter-identical, and really retried.
    faults.install(faults.parse_plans("kill_worker:partition=0,attempts=1"))
    try:
        plan = insert_exchanges(pipeline(), 2, backend="process")
        rows, metrics = plan.run_batches(1024)
    finally:
        faults.clear()
    assert rows == serial_rows, "kill-recovery: rows differ from serial"
    assert metrics.counters == serial_metrics.counters, (
        "kill-recovery: counters differ — recovery leaked into Metrics"
    )
    retries = 0
    stack = [plan]
    while stack:
        node = stack.pop()
        retries += getattr(node, "exchange_stats", {}).get("retries", 0)
        stack.extend(node.children())
    assert retries >= 1, (
        "kill-recovery: the injected worker kill was never retried"
    )

    # Live cancellation overhead, with CI-noise slack.  Rounds are
    # interleaved (bare, timed, bare, timed, ...) so both sides see the
    # same load regime — a sequential best-of each is flaky when a noise
    # spike lands entirely inside one side's window.
    chain = pipeline()
    chain.run_batches(1024)  # warm
    bare_s = timed_s = float("inf")
    for _ in range(9):
        start = time.perf_counter()
        chain.run_batches(1024)
        bare_s = min(bare_s, time.perf_counter() - start)
        start = time.perf_counter()
        chain.run_batches(1024, token=CancelToken(3600.0))
        timed_s = min(timed_s, time.perf_counter() - start)
    assert timed_s <= bare_s * 1.5, (
        f"cancellation checks regressed: {timed_s * 1e3:.2f}ms with a "
        f"deadline token vs {bare_s * 1e3:.2f}ms without "
        f"({timed_s / bare_s:.2f}x, live gate 1.5x)"
    )


def test_observe_not_regressed():
    """Proxy for bench_observe::*.

    1. the committed baseline must document both tracing-overhead
       acceptance claims — disabled <2% (the wrappers are pay-as-you-go)
       and enabled <10% (spans are per-stream, not per-row) — and carry
       timings for the traced thread exchange and the stats snapshot;
    2. live, on a small fixture: a fully traced run stays bit- and
       counter-identical to the untraced run (tracing must never perturb
       ``Metrics``), actually produces spans, and stays within a wide
       1.5× gate (CI hosts are noisy at these millisecond scales; the
       tight bars are asserted where the baseline is recorded) — so a
       per-row span or an accidentally always-on tracer trips CI.
    """
    import json as _json

    path = ROOT / "BENCH_bench_observe.json"
    if not path.exists():
        pytest.skip("no committed baseline BENCH_bench_observe.json")
    entries = _json.loads(path.read_text())
    disabled = entries.get("test_tracing_disabled_overhead_claim", {}).get(
        "extra_info", {}
    ).get("tracing_disabled_overhead")
    assert disabled is not None, (
        "BENCH_bench_observe.json carries no disabled-tracing claim — "
        "the acceptance record went missing"
    )
    assert disabled < 1.02, (
        f"committed baseline documents {disabled}x disabled-tracing "
        "overhead (acceptance bar: <2%)"
    )
    enabled = entries.get("test_tracing_enabled_overhead_claim", {}).get(
        "extra_info", {}
    ).get("tracing_enabled_overhead")
    assert enabled is not None, (
        "BENCH_bench_observe.json carries no enabled-tracing claim — "
        "the acceptance record went missing"
    )
    assert enabled < 1.10, (
        f"committed baseline documents {enabled}x enabled-tracing "
        "overhead (acceptance bar: <10%)"
    )
    for scenario in ("test_traced_thread_exchange", "test_stats_snapshot_cost"):
        assert entries.get(scenario, {}).get("mean_s") is not None, (
            f"BENCH_bench_observe.json lost its {scenario} timing"
        )

    from repro.obs.tracer import Tracer

    pipeline = _fact_pipeline(seed=37)
    serial_rows, serial_metrics = pipeline().run_batches(1024)

    def traced():
        tracer = Tracer()
        rows, metrics = pipeline().run_batches(1024, tracer=tracer)
        assert rows == serial_rows, "traced run: rows differ from untraced"
        assert metrics.counters == serial_metrics.counters, (
            "traced run: counters differ — tracing leaked into Metrics"
        )
        assert tracer.spans, "traced run produced no spans"

    bare_s = _best_of(lambda: pipeline().run_batches(1024))
    traced_s = _best_of(traced)
    assert traced_s <= bare_s * 1.5, (
        f"tracing overhead regressed: {traced_s * 1e3:.2f}ms traced vs "
        f"{bare_s * 1e3:.2f}ms untraced ({traced_s / bare_s:.2f}x, "
        "live gate 1.5x)"
    )


def test_memoized_oracle_repeats_not_regressed():
    """Proxy for bench_inference::test_memoized_repeat_queries[8]."""
    from repro.core.dependency import od
    from repro.core.inference import ODTheory

    baseline = _baseline("bench_inference", "test_memoized_repeat_queries[8]")
    theory = ODTheory(
        [od(f"c{i}", f"c{i + 1}") for i in range(7)], max_attributes=40
    )
    goals = [od("c0", f"c{i}") for i in range(1, 8)]

    def run():
        for goal in goals:
            assert theory.implies(goal)

    run()  # fill the result cache, as the benchmark's warm rounds do
    measured = _best_of(run)
    _check(measured, baseline, "memoized repeated oracle probes (width 8)")

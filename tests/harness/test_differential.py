"""Differential correctness harness: optimized vs unoptimized, cached vs
not, row-at-a-time vs vectorized.

Every query in every workload (taxes, datedim, tpcds_lite, and databases
built from random_instances) is executed four ways:

* ``baseline`` — ``optimize=False`` with the plan cache bypassed (the
  [17]-style FD planner, freshly planned every time);
* ``cold``     — ``optimize=True`` against a just-cleared plan cache
  (a miss: full OD planning, entry stored);
* ``warm``     — ``optimize=True`` again (a hit: the memoized physical
  plan re-executed);
* ``fd_cold`` / ``fd_warm`` — ``optimize=False`` through the cache twice:
  the second must hit the fd-mode entry, and neither may ever be the od
  plan (modes never share plans).

The contract asserted for each:

* warm results are **bit-identical** to cold results (same rows, same
  order — a cached plan is the same operator tree re-run);
* every optimized result has the same columns and the same row multiset
  as the baseline, and respects the query's ORDER BY;
* the warm run really was a cache hit and the cold run a miss;
* after a catalog mutation the cached plan is never served again
  (the acceptance criterion: no stale plan across an epoch change).

On top of the cache matrix, every query also runs **vectorized**
(``batch_size=N``) both plan-cache-warm and plan-cache-cold, at every
size in ``REPRO_DIFF_BATCH_SIZES`` (default ``7,256`` — a small odd size
to stress batch-boundary carry logic, a large one for the production
shape; CI adds ``1`` and ``1024``).  Batch results must be bit-identical
to the row-mode rows — including ORDER BY prefixes — and the ``Metrics``
row counters must match the row path's totals exactly.

Completing the mode matrix, every query also runs **parallel**
(``workers=K`` — partitioned chains behind order-preserving exchanges)
at every count in ``REPRO_DIFF_WORKERS`` (default ``2``; the
``parallel-correctness`` CI job runs ``1,2,4``) on every exchange
backend in ``REPRO_DIFF_BACKEND`` (default ``thread``; CI runs a
``thread`` × ``process`` matrix with the spawn start method pinned),
both plan-cache-cold (fresh exchange placement) and plan-cache-warm
(the cached parallel tree re-executed, which doubles as a determinism
check).  Every parallel leg must be bit-identical to the serial rows
with exactly the serial counter totals — partitioning, thread/process
scheduling, morsel reassembly, and result shipping must be invisible.
The parallel legs force the placement gate to 0 so even the small
differential workloads genuinely exercise exchanges (the gate's own
behaviour is pinned by its regression test in
``tests/engine/test_parallel.py``).

Finally the **join-order leg**: every query is re-planned with
``join_order="syntactic"`` (the parse order — the pre-search planner).
The syntactic plan must cache under its own join-order-qualified mode
key (never sharing a tree with the cost-based default), produce the same
columns and row multiset, respect the query's ORDER BY, and behave like
any plan across the execution modes (batch and parallel runs of the
syntactic tree bit- and counter-identical to its row run).  The
snowflake workload (``repro.workloads.snowflake``) exists to give this
leg real reorderings to check: its templates are written with
deliberately suboptimal parse orders and integer aggregate measures, so
cost-vs-syntactic results are exactly comparable (float sums would
differ in the last bits across fold orders).

And the **rewrites-off leg**: every query is re-planned with
``rewrites="off"`` (the logical rewrite pack disabled), which must cache
under its own rewrite-qualified mode key (``od+norw``), record no
rewrite-pack rules, and agree with the default plan on columns, row
multiset, and ORDER BY.  The rewrite_pack workload
(``repro.workloads.rewrite_pack``) makes this leg a real on-vs-off
differential: each of its templates fires exactly one rule (eager
aggregation, scan consolidation, FD join elimination), again with
integer measures so rewritten and unrewritten folds compare exactly.
"""
from __future__ import annotations

import os
from unittest import mock

import pytest

from repro.core.dependency import fd, od
from repro.engine import parallel as parallel_mod
from repro.engine.database import Database
from repro.engine.schema import Schema
from repro.engine.types import DataType
from repro.workloads.datedim import build_date_dim
from repro.workloads.random_instances import relation_satisfying
from repro.workloads.rewrite_pack import REWRITE_PACK_QUERIES, build_rewrite_pack
from repro.workloads.snowflake import SNOWFLAKE_QUERIES, build_snowflake
from repro.workloads.taxes import build_taxes
from repro.workloads.tpcds_lite import DATE_QUERIES, build_tpcds_lite

# ----------------------------------------------------------------------
# The harness core
# ----------------------------------------------------------------------
def _multiset(rows):
    return sorted(rows, key=repr)


def _assert_respects_order(result, order_keys, label):
    """The output must be non-decreasing on the ORDER BY keys.

    Only the prefix of keys present in the output columns is checkable
    (SQL permits ordering by columns the select list drops); trailing
    keys after a dropped one constrain only rows tied on the visible
    prefix, which multiset equality already covers.
    """
    positions = []
    for key in order_keys:
        if key not in result.columns:
            break
        positions.append(result.columns.index(key))
    values = [tuple(row[p] for p in positions) for row in result.rows]
    assert values == sorted(values), f"{label}: ORDER BY {order_keys} violated"


#: Vectorized-mode chunk sizes the harness exercises; override with a
#: comma-separated ``REPRO_DIFF_BATCH_SIZES`` (CI runs a second, wider set).
BATCH_SIZES = tuple(
    int(size)
    for size in os.environ.get("REPRO_DIFF_BATCH_SIZES", "7,256").split(",")
    if size.strip()
)

#: Parallel worker counts the harness exercises; override with a
#: comma-separated ``REPRO_DIFF_WORKERS`` (the parallel-correctness CI
#: job runs ``1,2,4``).  Empty disables the parallel legs.
WORKER_COUNTS = tuple(
    int(workers)
    for workers in os.environ.get("REPRO_DIFF_WORKERS", "2").split(",")
    if workers.strip()
)

#: Exchange backends the parallel legs drain through; override with a
#: comma-separated ``REPRO_DIFF_BACKEND`` (the parallel-correctness CI
#: job runs a ``thread`` × ``process`` matrix).  Empty disables the
#: parallel legs.
BACKENDS = tuple(
    backend.strip()
    for backend in os.environ.get("REPRO_DIFF_BACKEND", "thread").split(",")
    if backend.strip()
)


def run_differential(database, sql, order_keys=()):
    """Run one query all four ways and enforce the differential contract."""
    database.plan_cache.clear()
    baseline = database.execute(sql, optimize=False, use_cache=False)
    cold = database.execute(sql, optimize=True)
    # cache_state lives on the (shared) cached plan's PlanInfo, so sample
    # it at serve time — the warm serve below overwrites it with "hit".
    assert cold.plan.plan_info.cache_state == "miss"
    warm = database.execute(sql, optimize=True)
    assert warm.plan.plan_info.cache_state == "hit"
    assert warm.plan is cold.plan  # the memoized operator tree itself
    fd_cold = database.execute(sql, optimize=False)
    assert fd_cold.plan is not cold.plan, "modes must never share plans"
    assert fd_cold.plan.plan_info.cache_state == "miss"
    fd_warm = database.execute(sql, optimize=False)
    assert fd_warm.plan is fd_cold.plan  # warm fd hit on the fd entry
    assert fd_warm.plan.plan_info.cache_state == "hit"

    # Bit-identical across the cache: same plan, same execution.
    assert warm.columns == cold.columns
    assert warm.rows == cold.rows

    for label, result in (
        ("cold", cold),
        ("warm", warm),
        ("fd_cold", fd_cold),
        ("fd_warm", fd_warm),
    ):
        assert result.columns == baseline.columns, f"{label}: column mismatch"
        assert _multiset(result.rows) == _multiset(baseline.rows), (
            f"{label}: row multiset differs from unoptimized baseline"
        )
        _assert_respects_order(result, order_keys, label)
    _assert_respects_order(baseline, order_keys, "baseline")

    # Vectorized mode, plan-cache-warm: the same memoized operator tree
    # executed through execute_batches must be indistinguishable from the
    # row path — bit-identical rows (ORDER BY prefixes included, since the
    # rows are identical in order) and identical Metrics counter totals.
    for batch_size in BATCH_SIZES:
        batch_warm = database.execute(sql, optimize=True, batch_size=batch_size)
        label = f"batch_warm[{batch_size}]"
        assert batch_warm.plan is cold.plan, f"{label}: not the cached plan"
        assert batch_warm.columns == cold.columns, f"{label}: column mismatch"
        assert batch_warm.rows == cold.rows, (
            f"{label}: vectorized rows differ from row-mode rows"
        )
        assert batch_warm.metrics.counters == cold.metrics.counters, (
            f"{label}: counters differ (batch {batch_warm.metrics.counters} "
            f"vs row {cold.metrics.counters})"
        )

    # Vectorized mode, plan-cache-cold: a freshly planned tree, first
    # executed in batch mode, must produce the same bits too.  (An empty
    # REPRO_DIFF_BATCH_SIZES disables the vectorized matrix entirely.)
    if BATCH_SIZES:
        database.plan_cache.clear()
        batch_cold = database.execute(
            sql, optimize=True, batch_size=BATCH_SIZES[0]
        )
        assert batch_cold.plan.plan_info.cache_state == "miss"
        assert batch_cold.columns == cold.columns, "batch_cold: column mismatch"
        assert batch_cold.rows == cold.rows, (
            "batch_cold: vectorized rows differ from row-mode rows"
        )
        assert batch_cold.metrics.counters == cold.metrics.counters, (
            "batch_cold: counters differ"
        )

    # Parallel mode: the same query over partitioned chains behind
    # order-preserving exchanges, on every configured backend.  Cold
    # first (fresh exchange placement — parallel plans cache under their
    # own backend-qualified "od+wK+backend" mode key, so this never
    # evicts or serves the serial entries, and backends never serve each
    # other's trees), then warm (the cached parallel tree re-executed:
    # also a determinism check).  Every leg must reproduce the serial
    # rows bit-for-bit with the serial counter totals.  The placement
    # gate is forced to 0 here so even the small workloads genuinely
    # partition (the gate itself is pinned in tests/engine/test_parallel).
    if BATCH_SIZES and WORKER_COUNTS and BACKENDS:
        parallel_batch = BATCH_SIZES[0]
        with mock.patch.object(parallel_mod, "PARALLEL_MIN_ROWS", 0):
            for backend in BACKENDS:
                for workers in WORKER_COUNTS:
                    par_cold = database.execute(
                        sql,
                        optimize=True,
                        batch_size=parallel_batch,
                        workers=workers,
                        backend=backend,
                    )
                    label = f"parallel_cold[{backend},w{workers}]"
                    assert par_cold.plan.plan_info.cache_state == "miss", label
                    assert par_cold.plan is not cold.plan, (
                        f"{label}: parallel and serial plans must never mix"
                    )
                    assert par_cold.backend == backend, label
                    assert par_cold.columns == cold.columns, (
                        f"{label}: column mismatch"
                    )
                    assert par_cold.rows == cold.rows, (
                        f"{label}: parallel rows differ from serial rows"
                    )
                    assert par_cold.metrics.counters == cold.metrics.counters, (
                        f"{label}: counters differ (parallel "
                        f"{par_cold.metrics.counters} vs serial "
                        f"{cold.metrics.counters})"
                    )
                    par_warm = database.execute(
                        sql,
                        optimize=True,
                        batch_size=parallel_batch,
                        workers=workers,
                        backend=backend,
                    )
                    label = f"parallel_warm[{backend},w{workers}]"
                    assert par_warm.plan is par_cold.plan, (
                        f"{label}: not the cached plan"
                    )
                    assert par_warm.plan.plan_info.cache_state == "hit", label
                    assert par_warm.rows == cold.rows, f"{label}: rows drifted"
                    assert par_warm.metrics.counters == cold.metrics.counters, (
                        f"{label}: counters drifted"
                    )

    # Join-order leg: the parse (syntactic) order, planned under its own
    # join-order-qualified mode key, must agree with the cost-based
    # default on columns, row multiset, and ORDER BY — and its tree must
    # behave like any plan across the execution modes.
    syn_cold = database.execute(sql, optimize=True, join_order="syntactic")
    assert syn_cold.plan is not cold.plan, (
        "join orders must never share plans"
    )
    assert syn_cold.plan.plan_info.cache_state == "miss"
    syn_warm = database.execute(sql, optimize=True, join_order="syntactic")
    assert syn_warm.plan is syn_cold.plan, "syntactic warm: not the cached plan"
    assert syn_warm.plan.plan_info.cache_state == "hit"
    assert syn_warm.rows == syn_cold.rows, "syntactic warm: rows drifted"
    assert syn_cold.columns == cold.columns, "joinorder: column mismatch"
    assert _multiset(syn_cold.rows) == _multiset(cold.rows), (
        "joinorder: row multiset differs between cost and syntactic orders"
    )
    _assert_respects_order(syn_cold, order_keys, "joinorder_syntactic")
    if BATCH_SIZES:
        syn_batch = database.execute(
            sql, optimize=True, join_order="syntactic", batch_size=BATCH_SIZES[0]
        )
        assert syn_batch.rows == syn_cold.rows, "joinorder batch: rows differ"
        assert syn_batch.metrics.counters == syn_cold.metrics.counters, (
            "joinorder batch: counters differ"
        )
    if BATCH_SIZES and WORKER_COUNTS and BACKENDS:
        with mock.patch.object(parallel_mod, "PARALLEL_MIN_ROWS", 0):
            syn_par = database.execute(
                sql,
                optimize=True,
                join_order="syntactic",
                batch_size=BATCH_SIZES[0],
                workers=WORKER_COUNTS[0],
                backend=BACKENDS[0],
            )
        assert syn_par.rows == syn_cold.rows, "joinorder parallel: rows differ"
        assert syn_par.metrics.counters == syn_cold.metrics.counters, (
            "joinorder parallel: counters differ"
        )

    # Rewrite-pack leg: the same query with the logical rewrite pack
    # disabled (``rewrites="off"``) must plan under its own
    # rewrite-qualified mode key (``od+norw`` — never sharing a tree
    # with the default), carry no rewrite-pack records, and agree with
    # the default plan on columns, row multiset, and ORDER BY.  Where no
    # rule fires the two trees are the same shape anyway; where one does
    # (the rewrite_pack workload), this is the on-vs-off differential.
    norw_cold = database.execute(sql, optimize=True, rewrites="off")
    assert norw_cold.plan is not cold.plan, (
        "rewrite regimes must never share plans"
    )
    assert norw_cold.plan.plan_info.cache_state == "miss"
    assert norw_cold.plan.plan_info.rewrites == [], (
        "rewrites=off must never record rewrite-pack rules"
    )
    norw_warm = database.execute(sql, optimize=True, rewrites="off")
    assert norw_warm.plan is norw_cold.plan, "rewrites-off warm: not cached"
    assert norw_warm.plan.plan_info.cache_state == "hit"
    assert norw_warm.rows == norw_cold.rows, "rewrites-off warm: rows drifted"
    assert norw_cold.columns == cold.columns, "rewrites-off: column mismatch"
    assert _multiset(norw_cold.rows) == _multiset(cold.rows), (
        "rewrites-off: row multiset differs from the rewritten plan"
    )
    _assert_respects_order(norw_cold, order_keys, "rewrites_off")
    if BATCH_SIZES:
        norw_batch = database.execute(
            sql, optimize=True, rewrites="off", batch_size=BATCH_SIZES[0]
        )
        assert norw_batch.rows == norw_cold.rows, (
            "rewrites-off batch: rows differ"
        )
        assert norw_batch.metrics.counters == norw_cold.metrics.counters, (
            "rewrites-off batch: counters differ"
        )
    return baseline, cold, warm


def assert_no_stale_serving(database, sql, mutate):
    """A cached plan must never survive the catalog mutation ``mutate``."""
    before = database.plan(sql)
    hit = database.plan(sql)
    assert hit is before and hit.plan_info.cache_state == "hit"
    stale_before = database.plan_cache.stats()["stale_invalidations"]
    mutate()
    after = database.plan(sql)
    assert after is not before, "stale plan served across an epoch change"
    assert after.plan_info.cache_state == "miss"
    assert database.plan_cache.stats()["stale_invalidations"] == stale_before + 1


# ----------------------------------------------------------------------
# Workload fixtures (module-scoped, laptop-tiny)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def tax_db():
    database = Database("difftax")
    build_taxes(database, rows=2_000)
    return database


@pytest.fixture(scope="module")
def date_db():
    database = Database("diffdate")
    build_date_dim(database, days=500)
    return database


@pytest.fixture(scope="module")
def tpcds():
    return build_tpcds_lite(days=180, sales_rows=5_000, items=40, stores=6)


@pytest.fixture(scope="module")
def snowflake():
    return build_snowflake(days=150, sales_rows=4_000, items=60, brands=12, stores=8)


@pytest.fixture(scope="module")
def rewrite_db():
    return build_rewrite_pack(
        fact_rows=3_000, wide_rows=2_000, order_rows=3_000, customers=1_500
    )


def _random_db(seed: int) -> Database:
    """A database over a rejection-sampled relation satisfying fixed ODs."""
    statements = [od("a", "b"), od("b", "c"), fd("a", "b,c")]
    relation = relation_satisfying(
        statements, ("a", "b", "c", "d"), rows=40, domain=6, rng=seed
    )
    assert relation is not None
    database = Database(f"diffrand{seed}")
    table = database.create_table(
        "r",
        Schema.of(
            ("a", DataType.INT),
            ("b", DataType.INT),
            ("c", DataType.INT),
            ("d", DataType.INT),
        ),
    )
    table.load(relation.rows)
    for statement in statements:
        database.declare("r", statement)
    database.create_index("r_a", "r", ["a"], clustered=True)
    return database


# ----------------------------------------------------------------------
# Query suites: (name, sql, order_keys)
# ----------------------------------------------------------------------
TAXES_QUERIES = (
    ("count", "SELECT COUNT(*) AS n FROM taxes", ()),
    (
        "example5_order",
        "SELECT income, bracket, payable FROM taxes ORDER BY bracket, payable",
        ("bracket", "payable"),
    ),
    (
        "group_bracket",
        "SELECT bracket, COUNT(*) AS n FROM taxes GROUP BY bracket ORDER BY bracket",
        ("bracket",),
    ),
    (
        "range_sum",
        "SELECT SUM(payable) AS total FROM taxes WHERE income BETWEEN 50000 AND 150000",
        (),
    ),
    (
        "topn",
        "SELECT taxpayer_id, income FROM taxes ORDER BY income LIMIT 25",
        ("income",),
    ),
    ("distinct", "SELECT DISTINCT bracket FROM taxes ORDER BY bracket", ("bracket",)),
)

DATEDIM_QUERIES = (
    (
        "example1",
        "SELECT d_year, d_qoy, d_moy, COUNT(*) AS days FROM date_dim d "
        "GROUP BY d_year, d_qoy, d_moy ORDER BY d_year, d_qoy, d_moy",
        ("d_year", "d_qoy", "d_moy"),
    ),
    (
        "order_by_path",
        "SELECT d_date, d_year, d_moy, d_dom FROM date_dim d "
        "ORDER BY d_year, d_moy, d_dom",
        ("d_year", "d_moy", "d_dom"),
    ),
    (
        "range_count",
        "SELECT COUNT(*) AS n FROM date_dim d WHERE d_year = 1998",
        (),
    ),
    (
        "distinct_months",
        "SELECT DISTINCT d_moy FROM date_dim d ORDER BY d_moy",
        ("d_moy",),
    ),
    (
        "weeks",
        "SELECT d_week_seq, COUNT(*) AS days FROM date_dim d "
        "GROUP BY d_week_seq ORDER BY d_week_seq LIMIT 20",
        ("d_week_seq",),
    ),
)

RANDOM_QUERIES = (
    ("order_abc", "SELECT a, b, c FROM r ORDER BY a, b, c", ("a", "b", "c")),
    ("order_b", "SELECT a, b, d FROM r ORDER BY b", ("b",)),
    ("group_a", "SELECT a, COUNT(*) AS n FROM r GROUP BY a ORDER BY a", ("a",)),
    ("distinct_b", "SELECT DISTINCT b FROM r ORDER BY b", ("b",)),
    ("filtered", "SELECT c, d FROM r WHERE a >= 2 ORDER BY c", ("c",)),
)


def _tpcds_order_keys(sql: str):
    if "ORDER BY" not in sql:
        return ()
    tail = sql.split("ORDER BY", 1)[1]
    return tuple(part.strip() for part in tail.split("\n")[0].split(","))


# ----------------------------------------------------------------------
# The differential matrix
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name,sql,keys", TAXES_QUERIES, ids=[q[0] for q in TAXES_QUERIES])
def test_taxes_differential(tax_db, name, sql, keys):
    run_differential(tax_db, sql, keys)


@pytest.mark.parametrize(
    "name,sql,keys", DATEDIM_QUERIES, ids=[q[0] for q in DATEDIM_QUERIES]
)
def test_datedim_differential(date_db, name, sql, keys):
    run_differential(date_db, sql, keys)


@pytest.mark.parametrize("qid", [qid for qid, _ in DATE_QUERIES])
def test_tpcds_differential(tpcds, qid):
    template = dict(DATE_QUERIES)[qid]
    lo, hi = tpcds.date_range(30, 45)
    sql = template.format(lo=lo, hi=hi)
    run_differential(tpcds.database, sql, _tpcds_order_keys(template))


@pytest.mark.parametrize("qid", [qid for qid, _, _ in SNOWFLAKE_QUERIES])
def test_snowflake_differential(snowflake, qid):
    """The multi-join workload: real reorderings for the join-order leg."""
    entry = {q[0]: q for q in SNOWFLAKE_QUERIES}[qid]
    _, template, keys = entry
    lo, hi = snowflake.date_range(30, 40)
    sql = template.format(lo=lo, hi=hi)
    run_differential(snowflake.database, sql, keys)


@pytest.mark.parametrize("qid", [qid for qid, _, _ in REWRITE_PACK_QUERIES])
def test_rewrite_pack_differential(rewrite_db, qid):
    """The planted-win workload: every rule fires, on-vs-off must agree
    (and the full matrix — batch, parallel, join-order, rewrites-off —
    runs over the rewritten trees, partial aggregates included)."""
    entry = {q[0]: q for q in REWRITE_PACK_QUERIES}[qid]
    _, sql, keys = entry
    run_differential(rewrite_db, sql, keys)
    # This workload exists to make the rules fire — assert they did.
    expected_rule = {
        "RW1": "eager-agg",
        "RW2": "scan-consolidation",
        "RW3": "join-elimination",
    }[qid]
    plan = rewrite_db.plan(sql)
    assert [r.rule for r in plan.plan_info.rewrites] == [expected_rule]


def test_tpcds_differential_empty_range(tpcds):
    """The rewrite's no-qualifying-dates path (predicate folds to FALSE)."""
    template = dict(DATE_QUERIES)["Q3"]
    lo, hi = "1901-01-01", "1901-02-01"
    sql = template.format(lo=lo, hi=hi)
    run_differential(tpcds.database, sql, ("ss_store_sk",))


@pytest.mark.parametrize("seed", [11, 12, 13])
def test_random_instances_differential(seed):
    database = _random_db(seed)
    for name, sql, keys in RANDOM_QUERIES:
        run_differential(database, sql, keys)


# ----------------------------------------------------------------------
# The acceptance criterion: no cached plan across an epoch change
# ----------------------------------------------------------------------
def test_taxes_no_stale_plan_after_index(tax_db):
    assert_no_stale_serving(
        tax_db,
        "SELECT income, bracket FROM taxes ORDER BY bracket",
        lambda: tax_db.create_index("taxes_bracket_diff", "taxes", ["bracket"]),
    )


def test_datedim_no_stale_plan_after_declare(date_db):
    assert_no_stale_serving(
        date_db,
        "SELECT d_year, d_moy FROM date_dim d ORDER BY d_year, d_moy",
        lambda: date_db.declare("date_dim", od("d_date_sk", "d_year")),
    )


def test_tpcds_no_stale_plan_after_data_load(tpcds):
    """Data changes invalidate too: the rewrite bakes surrogate bounds
    read from date_dim rows into the plan."""
    lo, hi = tpcds.date_range(30, 45)
    sql = dict(DATE_QUERIES)["Q1"].format(lo=lo, hi=hi)
    fact = tpcds.database.table("store_sales")

    def mutate():
        fact.insert((tpcds.sk_base + 31, 1, 1, 1, 1, 9.99, 1.0))

    assert_no_stale_serving(tpcds.database, sql, mutate)
    # Restore the fixture's data — through the epoch, like any mutation,
    # so no plan cached against the inserted row can outlive it.
    from repro.engine.epoch import bump_epoch

    fact.rows.pop()
    bump_epoch("test-restore")


def test_random_no_stale_plan_after_table():
    database = _random_db(21)
    assert_no_stale_serving(
        database,
        "SELECT a, b FROM r ORDER BY a, b",
        lambda: database.create_table(
            "unrelated", Schema.of(("x", DataType.INT))
        ),
    )


# ----------------------------------------------------------------------
# The chaos leg: injected faults, typed outcomes, healthy pools
# ----------------------------------------------------------------------
# Every scenario runs one query under a deterministic fault plan (see
# repro.engine.faults) and must land in exactly one of two places:
#
# * ``recovered`` — rows AND Metrics counters bit-identical to fault-free
#   serial execution (retries and backend degradation are invisible
#   except in exchange_stats/QueryResult accounting);
# * a typed error — ``ExecutionFailed`` when every recovery rung is
#   exhausted, ``QueryTimeout`` when the scenario pairs the fault with a
#   deadline (the process backend cannot distinguish a silently-dropped
#   result stream from a slow worker, so its drop scenario *must* carry
#   a deadline; the thread backend detects the drop directly and
#   recovers).
#
# After every scenario the same backend must serve a fault-free run with
# full parity — no pool is ever left poisoned.  ``REPRO_CHAOS_BACKENDS``
# filters the matrix (the fault-correctness CI job pins one backend per
# matrix entry).
from repro.engine import faults as faults_mod
from repro.engine.errors import ExecutionFailed, QueryTimeout

CHAOS_BACKENDS = tuple(
    backend.strip()
    for backend in os.environ.get(
        "REPRO_CHAOS_BACKENDS", "thread,process"
    ).split(",")
    if backend.strip()
)

CHAOS_SQL = (
    "SELECT bracket, COUNT(*) AS n, SUM(payable) AS total FROM taxes "
    "WHERE income > 20000 GROUP BY bracket ORDER BY bracket"
)

#: (id, backend, fault spec, timeout_s, expected outcome)
CHAOS_SCENARIOS = (
    ("thread-raise-once", "thread", "raise:partition=0,attempts=1", None, "recovered"),
    ("thread-raise-seeded", "thread", "raise:partition=seeded,seed=3,attempts=1", None, "recovered"),
    ("thread-drop-once", "thread", "drop_results:partition=1,attempts=1", None, "recovered"),
    ("thread-drop-persistent", "thread", "drop_results:partition=1,attempts=99", None, "recovered"),
    ("thread-raise-persistent", "thread", "raise:partition=0,attempts=99", None, "failed"),
    ("thread-delay-deadline", "thread", "delay:delay=1.0", 0.25, "timeout"),
    ("process-kill-once", "process", "kill_worker:partition=0,attempts=1", None, "recovered"),
    ("process-kill-persistent", "process", "kill_worker:partition=0,attempts=99", None, "recovered"),
    ("process-raise-once", "process", "raise:partition=0,attempts=1", None, "recovered"),
    ("process-raise-persistent", "process", "raise:partition=0,attempts=99", None, "failed"),
    ("process-delay-deadline", "process", "delay:delay=1.0", 0.25, "timeout"),
    ("process-drop-deadline", "process", "drop_results:partition=0,attempts=99", 1.0, "timeout"),
)


@pytest.mark.parametrize(
    "scenario_id,backend,spec,timeout_s,expected",
    CHAOS_SCENARIOS,
    ids=[s[0] for s in CHAOS_SCENARIOS],
)
def test_chaos_matrix(tax_db, scenario_id, backend, spec, timeout_s, expected):
    if backend not in CHAOS_BACKENDS:
        pytest.skip(f"backend {backend!r} not in REPRO_CHAOS_BACKENDS")
    serial = tax_db.execute(CHAOS_SQL, batch_size=64)
    with mock.patch.object(parallel_mod, "PARALLEL_MIN_ROWS", 0):
        faults_mod.install(faults_mod.parse_plans(spec))
        try:
            if expected == "recovered":
                result = tax_db.execute(
                    CHAOS_SQL, workers=2, backend=backend, batch_size=64
                )
                assert result.rows == serial.rows, f"{scenario_id}: rows differ"
                assert result.metrics.counters == serial.metrics.counters, (
                    f"{scenario_id}: counters differ — recovery leaked into "
                    f"Metrics"
                )
                assert result.retries >= 1 or result.degraded_to is not None, (
                    f"{scenario_id}: the fault should have forced recovery"
                )
            elif expected == "failed":
                with pytest.raises(ExecutionFailed):
                    tax_db.execute(
                        CHAOS_SQL, workers=2, backend=backend, batch_size=64
                    )
            else:  # "timeout"
                with pytest.raises(QueryTimeout):
                    tax_db.execute(
                        CHAOS_SQL,
                        workers=2,
                        backend=backend,
                        batch_size=64,
                        timeout_s=timeout_s,
                    )
        finally:
            faults_mod.clear()
        # The pool must be healthy again: a fault-free run on the same
        # backend with full row and counter parity.
        after = tax_db.execute(CHAOS_SQL, workers=2, backend=backend, batch_size=64)
    assert after.rows == serial.rows, f"{scenario_id}: post-fault rows differ"
    assert after.metrics.counters == serial.metrics.counters, (
        f"{scenario_id}: post-fault counters differ"
    )
    assert after.retries == 0 and after.degraded_to is None, (
        f"{scenario_id}: the fault-free follow-up should not have recovered"
    )

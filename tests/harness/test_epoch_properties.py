"""Property tests (seeded) for the catalog-epoch invalidation contract.

Random sequences of catalog/constraint/data mutations are applied to a
live database while a query template is planned between every step.  The
invariants, for every seed and every mutation order:

* **every** mutation strictly bumps the global epoch;
* a query planned after a mutation is never answered with a plan object
  built before it (no stale serving, ever);
* re-planning with no intervening mutation *is* answered from cache;
* `build_theory` interning obeys the same clock: identical statement
  lists intern to one ``ODTheory`` within an epoch and never across one.
"""
from __future__ import annotations

import random

import pytest

from repro.core.dependency import fd, od
from repro.engine.database import Database
from repro.engine.epoch import current_epoch, epoch_log
from repro.engine.schema import Schema
from repro.engine.types import DataType
from repro.optimizer.context import build_theory

SQL = "SELECT a, b FROM t ORDER BY a, b"


def _fresh_db(tag: str) -> Database:
    database = Database(f"prop_{tag}")
    table = database.create_table(
        "t", Schema.of(("a", DataType.INT), ("b", DataType.INT), ("c", DataType.INT))
    )
    table.load([(i, i * 2, i % 3) for i in range(30)])
    database.declare("t", od("a", "b"))
    database.create_index("t_a", "t", ["a"], clustered=True)
    return database


def _mutations(database: Database, rng: random.Random, counter: list):
    """The pool of randomly applicable catalog/constraint/data mutations."""

    def create_table():
        counter[0] += 1
        database.create_table(
            f"side{counter[0]}", Schema.of(("x", DataType.INT))
        )

    def create_index():
        counter[0] += 1
        database.create_index(f"ix{counter[0]}", "t", ["b"])

    def declare_constraint():
        # re-declarable: holds in the generated data by construction
        database.declare("t", fd("a", "b,c"))

    def insert_row():
        counter[0] += 1
        database.table("t").insert((1000 + counter[0], 2000 + counter[0], 0))

    return [create_table, create_index, declare_constraint, insert_row]


@pytest.mark.parametrize("seed", range(8))
def test_random_mutations_always_bump_epoch_and_invalidate(seed):
    rng = random.Random(seed)
    database = _fresh_db(f"m{seed}")
    counter = [0]
    pool = _mutations(database, rng, counter)

    previous_plan = database.plan(SQL)
    assert database.plan(SQL) is previous_plan  # no mutation → cache hit

    for step in range(12):
        mutation = rng.choice(pool)
        epoch_before = current_epoch()
        mutation()
        assert current_epoch() > epoch_before, (
            f"seed {seed} step {step}: {mutation.__name__} did not bump"
        )
        fresh = database.plan(SQL)
        assert fresh is not previous_plan, (
            f"seed {seed} step {step}: pre-mutation plan served after "
            f"{mutation.__name__}"
        )
        assert fresh.plan_info.cache_state == "miss"
        assert fresh.plan_info.epoch == current_epoch()
        # and the re-plan with no further mutation hits the new entry
        assert database.plan(SQL) is fresh
        previous_plan = fresh


@pytest.mark.parametrize("seed", range(4))
def test_mutation_reasons_are_logged(seed):
    rng = random.Random(100 + seed)
    database = _fresh_db(f"log{seed}")
    counter = [0]
    pool = _mutations(database, rng, counter)
    expected = {
        "create_table": "create-table",
        "create_index": "create-index",
        "declare_constraint": "declare",
        "insert_row": "insert",
    }
    for _ in range(6):
        mutation = rng.choice(pool)
        reason = expected[mutation.__name__]
        before = epoch_log().get(reason, 0)
        mutation()
        assert epoch_log()[reason] > before


# ----------------------------------------------------------------------
# The build_theory half of the contract.  The interning-identity pins
# themselves live in tests/optimizer/test_context.py (TestInterningEpoch);
# here we check the harness-level property that both caches move together.
# ----------------------------------------------------------------------
class TestTheoryInterningEpoch:
    @pytest.mark.parametrize("seed", range(4))
    def test_theory_and_plan_cache_share_the_clock(self, seed):
        """After any random mutation, *both* caches refuse their old
        entries — they can never disagree about staleness."""
        rng = random.Random(200 + seed)
        database = _fresh_db(f"clock{seed}")
        counter = [0]
        pool = _mutations(database, rng, counter)
        statements = (od(f"s{seed}", f"t{seed}"),)

        plan_before = database.plan(SQL)
        theory_before = build_theory(statements)
        rng.choice(pool)()
        assert database.plan(SQL) is not plan_before
        assert build_theory(statements) is not theory_before

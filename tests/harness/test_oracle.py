"""SQLite ground-truth oracle: every workload query, replayed.

The differential harness (test_differential.py) proves our execution
modes agree with *each other*; this harness proves they agree with an
independent SQL implementation.  Every table of every workload database
is mirrored into an in-memory ``sqlite3`` database (INT → INTEGER,
FLOAT → REAL, STR → TEXT, BOOL → INTEGER, DATE → ISO-8601 TEXT — which
preserves comparison order, so date range predicates mean the same
thing), every workload query runs on both engines — ours both with the
rewrite pack on and off — and the result multisets must agree.

Floats are canonicalized to 9 significant digits before comparison:
different engines fold SUMs in different orders, so the last couple of
ulps are not meaningful, but 9 digits comfortably survive these
laptop-scale workloads.  Queries with LIMIT compare only the ORDER BY
key columns — SQL leaves the choice among tied boundary rows to the
implementation.

The headline regression this file pins: an ungrouped SUM over zero rows
is NULL (sqlite agrees), never 0.
"""
from __future__ import annotations

import datetime
import re
import sqlite3

import pytest

from repro.engine.types import DataType
from repro.workloads.rewrite_pack import REWRITE_PACK_QUERIES, build_rewrite_pack
from repro.workloads.snowflake import (
    SNOWFLAKE_QUERIES,
    build_snowflake,
    skewed_query_sql,
)
from repro.workloads.taxes import build_taxes
from repro.workloads.tpcds_lite import DATE_QUERIES, build_tpcds_lite
from repro.workloads.datedim import build_date_dim
from repro.engine.database import Database

from test_differential import (
    DATEDIM_QUERIES,
    RANDOM_QUERIES,
    TAXES_QUERIES,
    _random_db,
)

# ----------------------------------------------------------------------
# Mirroring and comparison
# ----------------------------------------------------------------------
_SQLITE_TYPE = {
    DataType.INT: "INTEGER",
    DataType.FLOAT: "REAL",
    DataType.STR: "TEXT",
    DataType.BOOL: "INTEGER",
    DataType.DATE: "TEXT",
}


def _to_sqlite(value):
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, datetime.date):
        return value.isoformat()
    return value


def sqlite_mirror(database) -> sqlite3.Connection:
    """An in-memory sqlite copy of every table in ``database``."""
    conn = sqlite3.connect(":memory:")
    for name, table in database.tables.items():
        columns = ", ".join(
            f'"{column}" {_SQLITE_TYPE[table.schema.dtype_of(column)]}'
            for column in table.schema.names
        )
        conn.execute(f'CREATE TABLE "{name}" ({columns})')
        placeholders = ", ".join("?" for _ in table.schema.names)
        conn.executemany(
            f'INSERT INTO "{name}" VALUES ({placeholders})',
            ([_to_sqlite(v) for v in row] for row in table.rows),
        )
    conn.commit()
    return conn


def _translate(sql: str) -> str:
    """Our dialect → sqlite: DATE literals become plain TEXT literals."""
    return re.sub(r"DATE\s+'", "'", sql)


def _canon_value(value):
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, float):
        return float(f"{value:.9g}")
    if isinstance(value, datetime.date):
        return value.isoformat()
    return value


def _canon(rows):
    return sorted(
        (tuple(_canon_value(v) for v in row) for row in rows), key=repr
    )


def _project(rows, columns, keys):
    positions = [columns.index(k) for k in keys if k in columns]
    return [tuple(row[p] for p in positions) for row in rows]


def check_against_oracle(database, conn, sql, order_keys=()):
    """Run ``sql`` on both engines (ours twice: rewrites on and off) and
    require identical canonical multisets."""
    cursor = conn.execute(_translate(sql))
    oracle_columns = tuple(d[0] for d in cursor.description)
    oracle_rows = cursor.fetchall()
    for rewrites in ("on", "off"):
        result = database.execute(sql, rewrites=rewrites)
        assert len(result.columns) == len(oracle_columns), (
            f"rewrites={rewrites}: column count differs from sqlite"
        )
        if "LIMIT" in sql.upper():
            ours = _project(result.rows, list(result.columns), order_keys)
            theirs = _project(oracle_rows, list(oracle_columns), order_keys)
        else:
            ours, theirs = result.rows, oracle_rows
        assert _canon(ours) == _canon(theirs), (
            f"rewrites={rewrites}: result multiset differs from sqlite for:\n{sql}"
        )


# ----------------------------------------------------------------------
# Workload fixtures (module-scoped, laptop-tiny) and their mirrors
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def tax_pair():
    database = Database("oracletax")
    build_taxes(database, rows=2_000)
    return database, sqlite_mirror(database)


@pytest.fixture(scope="module")
def date_pair():
    database = Database("oracledate")
    build_date_dim(database, days=400)
    return database, sqlite_mirror(database)


@pytest.fixture(scope="module")
def tpcds_pair():
    workload = build_tpcds_lite(days=180, sales_rows=4_000, items=40, stores=6)
    return workload, sqlite_mirror(workload.database)


@pytest.fixture(scope="module")
def snowflake_pair():
    workload = build_snowflake(
        days=150, sales_rows=3_000, items=60, brands=12, stores=8
    )
    return workload, sqlite_mirror(workload.database)


@pytest.fixture(scope="module")
def rewrite_pair():
    database = build_rewrite_pack(
        fact_rows=3_000, wide_rows=2_000, order_rows=3_000, customers=1_500
    )
    return database, sqlite_mirror(database)


# ----------------------------------------------------------------------
# The oracle matrix: every workload query against sqlite
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "name,sql,keys", TAXES_QUERIES, ids=[q[0] for q in TAXES_QUERIES]
)
def test_taxes_oracle(tax_pair, name, sql, keys):
    database, conn = tax_pair
    check_against_oracle(database, conn, sql, keys)


@pytest.mark.parametrize(
    "name,sql,keys", DATEDIM_QUERIES, ids=[q[0] for q in DATEDIM_QUERIES]
)
def test_datedim_oracle(date_pair, name, sql, keys):
    database, conn = date_pair
    check_against_oracle(database, conn, sql, keys)


@pytest.mark.parametrize("qid", [qid for qid, _ in DATE_QUERIES])
def test_tpcds_oracle(tpcds_pair, qid):
    workload, conn = tpcds_pair
    lo, hi = workload.date_range(30, 45)
    sql = dict(DATE_QUERIES)[qid].format(lo=lo, hi=hi)
    check_against_oracle(workload.database, conn, sql)


@pytest.mark.parametrize("qid", [qid for qid, _, _ in SNOWFLAKE_QUERIES])
def test_snowflake_oracle(snowflake_pair, qid):
    workload, conn = snowflake_pair
    _, template, keys = {q[0]: q for q in SNOWFLAKE_QUERIES}[qid]
    lo, hi = workload.date_range(30, 40)
    check_against_oracle(
        workload.database, conn, template.format(lo=lo, hi=hi), keys
    )


def test_snowflake_skewed_oracle(snowflake_pair):
    workload, conn = snowflake_pair
    for qid, sql in sorted(skewed_query_sql(workload).items()):
        check_against_oracle(workload.database, conn, sql)


@pytest.mark.parametrize("qid", [qid for qid, _, _ in REWRITE_PACK_QUERIES])
def test_rewrite_pack_oracle(rewrite_pair, qid):
    """The rewritten trees (each template fires one rule) against sqlite."""
    database, conn = rewrite_pair
    _, sql, keys = {q[0]: q for q in REWRITE_PACK_QUERIES}[qid]
    check_against_oracle(database, conn, sql, keys)


@pytest.mark.parametrize("seed", [11, 12])
def test_random_instances_oracle(seed):
    database = _random_db(seed)
    conn = sqlite_mirror(database)
    for name, sql, keys in RANDOM_QUERIES:
        check_against_oracle(database, conn, sql, keys)


# ----------------------------------------------------------------------
# The headline bugfix, pinned against the ground truth
# ----------------------------------------------------------------------
def test_empty_sum_is_null_like_sqlite(tax_pair):
    """Ungrouped SUM over zero rows is NULL (COUNT stays 0) — on both
    engines, in every execution mode."""
    database, conn = tax_pair
    sql = (
        "SELECT COUNT(*) AS n, SUM(payable) AS total FROM taxes "
        "WHERE income < 0"
    )
    oracle_rows = conn.execute(_translate(sql)).fetchall()
    assert oracle_rows == [(0, None)]
    for kwargs in (
        {},
        {"rewrites": "off"},
        {"optimize": False},
        {"batch_size": 7},
        {"batch_size": 256},
    ):
        result = database.execute(sql, **kwargs)
        assert result.rows == [(0, None)], f"{kwargs}: empty SUM must be NULL"

"""Shared fixtures for the observability suite: one small fact database
(fast to build, joins/aggregates/sorts in the plans) plus its serial
baseline result for parity assertions."""
from __future__ import annotations

import pytest

from repro.engine.database import Database
from repro.workloads.microbench import build_fact

ROWS = 4_000
SQL = (
    "SELECT bracket, COUNT(*) AS n, SUM(payable) AS total "
    "FROM fact WHERE income > 1000 GROUP BY bracket ORDER BY bracket"
)


@pytest.fixture
def db() -> Database:
    database = Database()
    fact = build_fact(ROWS, seed=11)
    table = database.create_table("fact", fact.schema)
    for row in fact.rows:
        table.insert(row)
    return database


@pytest.fixture
def serial(db):
    return db.execute(SQL)

"""EXPLAIN ANALYZE: measured actuals folded onto the plan tree, plus the
per-node Q-error against the planner's own cardinality estimates — the
engine auditing the statistics subsystem it plans with."""
from __future__ import annotations

import pytest

from repro.obs.analyze import q_error
from repro.workloads.snowflake import (
    build_snowflake,
    skewed_query_sql,
)

SQL = (
    "SELECT bracket, COUNT(*) AS n, SUM(payable) AS total "
    "FROM fact WHERE income > 1000 GROUP BY bracket ORDER BY bracket"
)


# ----------------------------------------------------------------------
# The Q-error metric itself
# ----------------------------------------------------------------------
def test_q_error_is_symmetric_and_floored():
    assert q_error(100, 100) == 1.0
    assert q_error(200, 100) == 2.0
    assert q_error(100, 200) == 2.0
    # Both sides floor at one row: an empty actual vs a tiny estimate
    # cannot explode to infinity.
    assert q_error(0, 0) == 1.0
    assert q_error(5, 0) == 5.0


# ----------------------------------------------------------------------
# Annotated output on the small fact workload
# ----------------------------------------------------------------------
def test_analyze_annotates_every_node_with_actuals(db):
    text = db.explain(SQL, analyze=True)
    for line in text.splitlines():
        assert "actual rows=" in line
        assert "time=" in line
    # Scans see every fact row; the root emits the group count.
    assert "SeqScan(fact AS fact)  [actual rows=4000" in text


def test_analyze_reports_q_error_per_node(db):
    text = db.explain(SQL, analyze=True)
    assert "q-err=" in text
    info = db.plan(SQL).plan_info
    assert info.analyze is not None
    assert info.analyze["nodes"] == len(info.analyze["summary"])
    assert info.analyze["wall_ms"] > 0
    assert info.analyze["max_q_error"] >= 1.0
    for entry in info.analyze["summary"]:
        assert entry["rows"] >= 0
        if "q_error" in entry:
            assert entry["q_error"] >= 1.0


@pytest.mark.parametrize("mode", ["row", "batch"], ids=str)
def test_analyze_actuals_match_executed_rows(db, mode):
    kwargs = {"batch_size": 256} if mode == "batch" else {}
    result = db.execute(SQL, **kwargs)
    db.explain(SQL, analyze=True, **kwargs)
    info = db.plan(SQL).plan_info
    root = info.analyze["summary"][0]
    assert root["rows"] == len(result.rows)
    if mode == "batch":
        assert root.get("batches", 0) >= 1


def test_analyze_verbose_appends_summary_line(db):
    text = db.explain(SQL, analyze=True, verbose=True)
    assert "analyze:" in text
    assert "node(s), wall" in text


# ----------------------------------------------------------------------
# The acceptance query: SK1 on the skewed snowflake
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def snowflake():
    return build_snowflake(days=120, sales_rows=4_000)


def test_sk1_analyze_shows_rows_and_q_error_per_node(snowflake):
    db = snowflake.database
    sql = skewed_query_sql(snowflake)["SK1"]
    text = db.explain(sql, analyze=True)
    lines = text.splitlines()
    assert len(lines) >= 5  # agg over a 3-way join
    for line in lines:
        assert "actual rows=" in line
    # Every costed node carries its estimate audit.
    assert sum("q-err=" in line for line in lines) == len(lines)
    info = db.plan(sql).plan_info
    assert info.analyze["max_q_error"] >= 1.0


def test_parallel_analyze_sums_partitions_and_skips_exchange_estimate(db):
    """Exchange nodes are un-costed (estimate_plan rejects them): they
    report actuals only, while the nodes below still Q-error audit —
    and partition actuals sum to the serial row counts."""
    text = db.explain(SQL, workers=2, backend="thread", analyze=True)
    exchange_lines = [l for l in text.splitlines() if "Exchange" in l]
    assert exchange_lines
    for line in exchange_lines:
        assert "actual rows=" in line and "est=" not in line
    assert "SeqScan(fact AS fact)  [actual rows=4000" in text

"""Output-stability tests for ``explain(verbose=True)``: the line
vocabulary downstream tooling greps for — "plan cache:", "rewrites:",
"parallel:", "fault tolerance:", and the new "analyze:" — across cache
hit/miss/bypass and every backend."""
from __future__ import annotations

import pytest

from repro.engine import faults
from repro.workloads.rewrite_pack import REWRITE_PACK_QUERIES, build_rewrite_pack

SQL = (
    "SELECT bracket, COUNT(*) AS n, SUM(payable) AS total "
    "FROM fact WHERE income > 1000 GROUP BY bracket ORDER BY bracket"
)


@pytest.fixture(autouse=True)
def _no_leftover_faults():
    faults.clear()
    yield
    faults.clear()


def test_verbose_baseline_vocabulary(db):
    text = db.explain(SQL, verbose=True)
    assert "plan mode: od" in text
    assert "execution: row (iterator)" in text
    assert "estimate: " in text
    assert "oracle: " in text


def test_plan_cache_line_across_hit_miss_bypass(db):
    db.plan_cache.clear()
    miss = db.explain(SQL, verbose=True)
    assert "plan cache: entry " in miss
    assert "planned once" in miss
    hit = db.explain(SQL, verbose=True)
    assert "served" in hit and "from cache" in hit
    # Bypass plans are never fingerprinted/stored: no cache line at all.
    bypass = db.explain(SQL, verbose=True, use_cache=False)
    assert "plan cache:" not in bypass


@pytest.mark.parametrize("backend", ["inline", "thread", "process"])
def test_parallel_line_names_workers_and_backend(db, backend):
    text = db.explain(SQL, verbose=True, workers=2, backend=backend)
    assert f"parallel: 2 workers, {backend} backend" in text
    assert "exchange: " in text
    assert f"{backend} backend)" in text  # the execution: line agrees


def test_rewrites_line_is_stable():
    db = build_rewrite_pack(fact_rows=3_000, wide_rows=2_000,
                            order_rows=4_000, customers=2_000)
    rw1 = dict((qid, sql) for qid, sql, _ in REWRITE_PACK_QUERIES)["RW1"]
    text = db.explain(rw1, verbose=True)
    assert "rewrites: eager-agg(f.f_val below join)" in text


def test_fault_tolerance_line_after_recovery(db):
    faults.install(faults.parse_plans("raise:partition=1,attempts=1"))
    db.execute(SQL, workers=2, backend="thread")
    text = db.explain(SQL, verbose=True, workers=2, backend="thread")
    assert "fault tolerance: 1 retried attempt(s)" in text


def test_analyze_line_appears_only_after_analyze(db):
    plain = db.explain(SQL, verbose=True)
    assert "analyze:" not in plain
    analyzed = db.explain(SQL, verbose=True, analyze=True)
    assert "analyze: " in analyzed
    assert "node(s), wall " in analyzed
    assert "max q-err " in analyzed


@pytest.mark.parametrize("backend", ["inline", "thread"])
def test_analyze_composes_with_backends(db, backend):
    text = db.explain(SQL, verbose=True, analyze=True,
                      workers=2, backend=backend)
    assert "analyze: " in text
    assert f"parallel: 2 workers, {backend} backend" in text
    assert "actual rows=" in text

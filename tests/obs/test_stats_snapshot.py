"""The unified metrics registry: ``Database.stats_snapshot()``, the
monotonic-counter contract, the slow-query ring, the lifetime exchange
totals, and the ``Metrics.work`` recomputation cache."""
from __future__ import annotations

import pytest

from repro.engine.errors import QueryTimeout
from repro.engine.operators.base import Metrics
from repro.obs.registry import RING_SIZE, EngineMetrics

SQL = (
    "SELECT bracket, COUNT(*) AS n, SUM(payable) AS total "
    "FROM fact WHERE income > 1000 GROUP BY bracket ORDER BY bracket"
)

SECTIONS = ("epoch", "engine", "plan_cache", "theory_cache", "exchange",
            "logical_memo_size")


def test_snapshot_has_every_section(db):
    snap = db.stats_snapshot()
    assert set(SECTIONS) <= set(snap)
    assert set(snap["engine"]["counters"]) == {
        "queries", "failures", "timeouts", "rows_returned",
        "slow_queries", "wall_ns",
    }
    assert snap["theory_cache"]["capacity"] == 256
    assert snap["plan_cache"]["capacity"] == 128


def test_engine_counters_are_monotonic_across_queries(db):
    readings = []
    for _ in range(3):
        db.execute(SQL)
        readings.append(db.stats_snapshot()["engine"]["counters"])
    for before, after in zip(readings, readings[1:]):
        for key, value in before.items():
            assert after[key] >= value, key
        assert after["queries"] == before["queries"] + 1
    assert readings[-1]["rows_returned"] >= 3  # brackets per run


def test_failures_and_timeouts_are_counted(db):
    with pytest.raises(QueryTimeout):
        db.execute(SQL, timeout_s=1e-9)
    counters = db.stats_snapshot()["engine"]["counters"]
    assert counters["queries"] == 1
    assert counters["failures"] == 1
    assert counters["timeouts"] == 1


def test_failed_traced_query_keeps_its_flight_recorder(db):
    with pytest.raises(QueryTimeout) as excinfo:
        db.execute(SQL, timeout_s=1e-9, trace=True)
    trace = excinfo.value.trace
    assert trace is not None
    names = {e["name"] for e in trace["traceEvents"]}
    assert "query" in names


def test_slow_query_ring_records_and_bounds(db):
    db._registry.slow_ms = 0.0  # every query is "slow"
    result = None
    for _ in range(3):
        result = db.execute(SQL)
    snap = db.stats_snapshot()["engine"]
    assert snap["counters"]["slow_queries"] == 3
    entry = snap["slow_queries"][-1]
    assert entry["sql"] == SQL
    assert entry["wall_ms"] > 0
    assert entry["rows"] == len(result.rows)
    assert entry["error"] is None


def test_slow_query_ring_is_bounded():
    registry = EngineMetrics(slow_ms=0.0)
    for index in range(RING_SIZE + 10):
        registry.record(f"q{index}", wall_ns=1_000_000, rows=1)
    assert len(registry.slow_queries()) == RING_SIZE
    # Oldest evicted first: the ring keeps the most recent entries.
    assert registry.slow_queries()[0].sql == "q10"
    assert registry.counters()["slow_queries"] == RING_SIZE + 10


def test_exchange_totals_accumulate_across_parallel_runs(db):
    assert db.stats_snapshot()["exchange"] == {"parallel_runs": 0}
    db.execute(SQL, workers=2, backend="thread")
    db.execute(SQL, workers=2, backend="thread")
    db.execute(SQL)  # serial: not a parallel run
    totals = db.stats_snapshot()["exchange"]
    assert totals["parallel_runs"] == 2
    assert totals["retries"] == 0


def test_result_exchange_stats_is_read_only_and_merged(db):
    result = db.execute(SQL, workers=2, backend="thread")
    stats = result.exchange_stats
    assert stats["exchanges"] == 1
    assert stats["retries"] == 0 and stats["degraded_to"] is None
    with pytest.raises(TypeError):
        stats["retries"] = 7  # type: ignore[index]
    serial = db.execute(SQL)
    assert dict(serial.exchange_stats) == {}


def test_theory_cache_stats_are_gauges_over_live_entries(db):
    from repro.optimizer.context import clear_theory_cache, theory_cache_stats

    clear_theory_cache()
    assert theory_cache_stats()["size"] == 0
    db.execute(SQL)
    stats = theory_cache_stats()
    assert stats["size"] >= 1
    assert stats["implies_calls"] >= 0
    clear_theory_cache()
    assert theory_cache_stats()["size"] == 0  # gauge: it went down


# ----------------------------------------------------------------------
# Metrics.work: cached until the counters actually change
# ----------------------------------------------------------------------
def test_work_reflects_counter_updates():
    metrics = Metrics()
    assert metrics.work == 0.0
    metrics.add("rows_scanned", 100)
    first = metrics.work
    assert first > 0.0
    metrics.add("rows_scanned", 100)
    assert metrics.work == 2 * first


def test_work_is_cached_between_updates():
    metrics = Metrics()
    metrics.add("sort_rows", 1024)
    value = metrics.work
    rev = metrics._work_rev
    assert metrics.work == value
    assert metrics._work_rev == rev  # served from cache, not recomputed
    metrics.add("sort_rows", 1024)
    assert metrics.work > value
    assert metrics._work_rev != rev

"""Tracing under injected faults: after retries and backend degradation
the trace must still be ONE well-nested span tree — failed attempts'
worker spans ride only terminal messages, so they simply never arrive,
and the surviving attempt's spans graft cleanly under the exchange."""
from __future__ import annotations

import json

import pytest

from repro.engine import faults
from repro.engine.database import Database
from repro.workloads.microbench import build_fact

ROWS = 6_000
SQL = (
    "SELECT bracket, COUNT(*) AS n, SUM(payable) AS total "
    "FROM fact WHERE income > 1000 GROUP BY bracket ORDER BY bracket"
)


@pytest.fixture
def db():
    database = Database()
    fact = build_fact(ROWS, seed=7)
    table = database.create_table("fact", fact.schema)
    for row in fact.rows:
        table.insert(row)
    return database


@pytest.fixture(autouse=True)
def _no_leftover_faults():
    faults.clear()
    yield
    faults.clear()


def _assert_single_well_nested_tree(trace: dict) -> None:
    events = trace["traceEvents"]
    by_id = {e["args"]["id"]: e for e in events}
    roots = [e for e in events if e["args"].get("parent") is None]
    assert len(roots) == 1 and roots[0]["name"] == "query"
    for event in events:
        parent_id = event["args"].get("parent")
        if parent_id is None:
            continue
        assert parent_id in by_id, f"orphan span {event['name']}"
        parent = by_id[parent_id]
        # Well-nesting on each lane: a child's interval sits inside its
        # parent's (cross-lane grafts only guarantee containment of the
        # start, as worker clocks are rebased independently).
        if event["tid"] == parent["tid"]:
            assert event["ts"] >= parent["ts"]
            assert event["ts"] + event["dur"] <= parent["ts"] + parent["dur"]


def test_retried_partition_yields_single_span_tree(db):
    """Seeded kill_worker: the killed attempt's spans vanish with its
    buffered morsels; only the retry's spans are adopted."""
    faults.install(faults.parse_plans("kill_worker:partition=0,attempts=1"))
    serial = db.execute(SQL, batch_size=256)
    result = db.execute(
        SQL, workers=2, backend="process", batch_size=256, trace=True
    )
    assert result.rows == serial.rows
    assert result.metrics.counters == serial.metrics.counters
    assert result.retries >= 1
    _assert_single_well_nested_tree(result.trace)
    # Exactly one adopted span set per partition — no duplicate spans
    # from the killed attempt.
    partitions = [
        e["args"]["partition"]
        for e in result.trace["traceEvents"]
        if "partition" in e["args"] and e["cat"] == "operator"
        and e["args"]["node"].count(".") == 5  # partition-root depth
    ]
    assert sorted(set(partitions)) == [0, 1]


def test_degraded_run_keeps_trace_and_parity(db):
    """Persistent kill: the process rung degrades to threads; the trace
    stays one tree and the adopted spans come from the surviving rung."""
    faults.install(faults.parse_plans("kill_worker:partition=0,attempts=99"))
    serial = db.execute(SQL, batch_size=256)
    result = db.execute(
        SQL, workers=2, backend="process", batch_size=256, trace=True
    )
    assert result.rows == serial.rows
    assert result.metrics.counters == serial.metrics.counters
    assert result.degraded_to == "thread"
    _assert_single_well_nested_tree(result.trace)
    json.dumps(result.trace)  # still a valid Chrome export


def test_process_backend_trace_is_valid_chrome_json(db):
    """Fault-free process run: worker spans ship over the queue, rebase
    onto consumer node paths, and the whole export serializes."""
    serial = db.execute(SQL, batch_size=256)
    result = db.execute(
        SQL, workers=2, backend="process", batch_size=256, trace=True
    )
    assert result.rows == serial.rows
    assert result.metrics.counters == serial.metrics.counters
    _assert_single_well_nested_tree(result.trace)
    parsed = json.loads(json.dumps(result.trace))
    worker_spans = [
        e for e in parsed["traceEvents"] if "partition" in e["args"]
    ]
    assert worker_spans, "worker spans must ship back from the pool"
    assert {e["args"]["attempt"] for e in worker_spans} == {0}

"""The span tracer: hierarchical spans, pay-as-you-go disablement, the
observational-parity invariant, and the Chrome ``trace_event`` export.

The load-bearing contract is **parity**: a traced execution returns rows
and ``Metrics`` counters bit-identical to the untraced run, in every
mode and on every backend — tracing observes, it never perturbs.
"""
from __future__ import annotations

import json

import pytest

from repro.obs.tracer import Tracer

SQL = (
    "SELECT bracket, COUNT(*) AS n, SUM(payable) AS total "
    "FROM fact WHERE income > 1000 GROUP BY bracket ORDER BY bracket"
)


# ----------------------------------------------------------------------
# Span mechanics
# ----------------------------------------------------------------------
def test_spans_nest_and_close_in_order():
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    outer, inner = tracer.spans[0], tracer.spans[1]
    assert outer.name == "outer" and inner.name == "inner"
    assert inner.parent == outer.id
    assert outer.dur_ns is not None and inner.dur_ns is not None
    # The child closed first: its interval sits inside the parent's.
    assert inner.start_ns >= outer.start_ns
    assert inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns


def test_span_args_and_categories_are_recorded():
    tracer = Tracer()
    with tracer.span("phase", "optimizer", detail="x"):
        pass
    span = tracer.spans[0]
    assert span.cat == "optimizer"
    assert span.args["detail"] == "x"


def test_finish_closes_abandoned_spans():
    tracer = Tracer()
    span_id = tracer.begin("dangling")
    tracer.finish()
    assert all(s.dur_ns is not None for s in tracer.spans)
    assert tracer.spans[0].id == span_id


# ----------------------------------------------------------------------
# Disabled path: no tracer, no spans, no behavioral difference
# ----------------------------------------------------------------------
def test_untraced_result_has_no_trace(db):
    # trace=False pins the claim even when REPRO_TRACE=1 defaults it on
    # (the obs-correctness CI job runs this suite with tracing forced).
    result = db.execute(SQL, trace=False)
    assert result.trace is None
    assert result.metrics.tracer is None


def test_trace_flag_overrides_default(db):
    assert db.execute(SQL, trace=False).trace is None
    assert db.execute(SQL, trace=True).trace is not None


# ----------------------------------------------------------------------
# Parity: traced == untraced, bit for bit, in every mode
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        {},
        {"batch_size": 256},
        {"workers": 2, "backend": "inline"},
        {"workers": 2, "backend": "thread"},
    ],
    ids=["row", "batch", "inline", "thread"],
)
def test_tracing_never_perturbs_results_or_counters(db, serial, kwargs):
    plain = db.execute(SQL, **kwargs)
    traced = db.execute(SQL, trace=True, **kwargs)
    assert traced.rows == plain.rows == serial.rows
    assert traced.metrics.counters == plain.metrics.counters
    assert traced.trace is not None


def test_operator_spans_cover_every_plan_node(db):
    result = db.execute(SQL, trace=True)
    events = result.trace["traceEvents"]
    operator_nodes = {
        e["args"]["node"] for e in events if e["cat"] == "operator"
    }
    # Walk the plan: every node path must have been measured.
    expected = set()
    stack = [(result.plan, "0")]
    while stack:
        op, path = stack.pop()
        expected.add(path)
        for index, child in enumerate(op.children()):
            stack.append((child, f"{path}.{index}"))
    assert operator_nodes == expected


def test_operator_spans_carry_rows_and_trace_args(db):
    result = db.execute(SQL, trace=True)
    events = result.trace["traceEvents"]
    scans = [e for e in events if e["name"] == "SeqScan"]
    assert scans and scans[0]["args"]["table"] == "fact"
    assert scans[0]["args"]["rows"] == 4_000
    filters = [e for e in events if e["name"] == "Filter"]
    assert filters and "predicate" in filters[0]["args"]


def test_optimizer_phases_are_traced_on_cache_miss(db):
    db.plan_cache.clear()
    names = {
        e["name"]
        for e in db.execute(SQL, trace=True).trace["traceEvents"]
    }
    assert {"query", "execute", "parse-bind", "cache-lookup"} <= names
    assert "physical-plan" in names  # a planner phase ran on the miss


# ----------------------------------------------------------------------
# Worker spans: shipped back and re-parented under the exchange
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["inline", "thread"])
def test_worker_spans_graft_under_the_exchange(db, backend):
    result = db.execute(SQL, workers=3, backend=backend, trace=True)
    events = result.trace["traceEvents"]
    ids = {e["args"]["id"] for e in events}
    # One well-formed forest: every parent reference resolves.
    assert all(
        e["args"].get("parent") in ids
        for e in events
        if e["args"].get("parent") is not None
    )
    roots = [e for e in events if e["args"].get("parent") is None]
    assert len(roots) == 1 and roots[0]["name"] == "query"
    partition_spans = [e for e in events if "partition" in e["args"]]
    assert {e["args"]["partition"] for e in partition_spans} == {0, 1, 2}
    # Partition lanes render on distinct tids; the consumer stays on 0.
    assert len({e["tid"] for e in partition_spans}) == 3
    assert 0 not in {e["tid"] for e in partition_spans}


# ----------------------------------------------------------------------
# Chrome export
# ----------------------------------------------------------------------
def test_chrome_export_is_valid_trace_event_json(db):
    result = db.execute(SQL, workers=2, backend="thread", trace=True)
    blob = json.dumps(result.trace)  # must serialize
    parsed = json.loads(blob)
    assert parsed["displayTimeUnit"] == "ms"
    for event in parsed["traceEvents"]:
        assert event["ph"] == "X"
        assert event["ts"] >= 0 and event["dur"] >= 0
        assert isinstance(event["name"], str) and isinstance(event["cat"], str)


def test_repro_trace_env_knob(db, monkeypatch):
    import repro.engine.database as database_mod

    monkeypatch.setattr(database_mod, "TRACE_DEFAULT", True)
    assert db.execute(SQL).trace is not None
    monkeypatch.setattr(database_mod, "TRACE_DEFAULT", False)
    assert db.execute(SQL).trace is None

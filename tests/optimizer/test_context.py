"""Query-scoped theory assembly: qualification, join equivalences,
constants."""
from __future__ import annotations

import pytest

from repro.core.attrs import attrlist
from repro.core.dependency import compat, equiv, fd, od
from repro.optimizer.context import (
    alias_constraints,
    build_theory,
    constant_statement,
    join_equivalence,
    qualify_statement,
)


class TestQualify:
    def test_od(self):
        assert qualify_statement(od("a", "b"), "t") == od("t.a", "t.b")

    def test_equiv(self):
        assert qualify_statement(equiv("a", "b"), "t") == equiv("t.a", "t.b")

    def test_compat(self):
        assert qualify_statement(compat("a", "b"), "t") == compat("t.a", "t.b")

    def test_fd(self):
        qualified = qualify_statement(fd("a,b", "c"), "t")
        assert qualified == fd("t.a,t.b", "t.c")

    def test_rejects_junk(self):
        with pytest.raises(TypeError):
            qualify_statement("nonsense", "t")

    def test_lists_keep_order(self):
        qualified = qualify_statement(od("b,a", "c"), "t")
        assert tuple(qualified.lhs) == ("t.b", "t.a")


class TestBuildingBlocks:
    def test_join_equivalence(self):
        statement = join_equivalence("f.sk", "d.sk")
        assert statement == equiv("f.sk", "d.sk")

    def test_constant(self):
        statement = constant_statement("t.year")
        assert tuple(statement.lhs) == ()
        assert tuple(statement.rhs) == ("t.year",)

    def test_alias_constraints_pull_from_catalog(self):
        from repro.engine.database import Database
        from repro.engine.schema import Schema
        from repro.engine.types import DataType

        db = Database()
        table = db.create_table(
            "t", Schema.of(("a", DataType.INT), ("b", DataType.INT))
        )
        table.load([(1, 1), (2, 2)])
        db.declare("t", od("a", "b"))
        statements = alias_constraints(db, "x", "t")
        assert statements == [od("x.a", "x.b")]


class TestComposedTheory:
    def test_join_equivalence_transfers_constraints(self):
        """The scenario behind the date rewrite: a constraint on the
        dimension's key transfers across the join equality."""
        theory = build_theory(
            [
                qualify_statement(equiv("sk", "dt"), "d"),
                join_equivalence("f.sk", "d.sk"),
            ]
        )
        assert theory.implies(od("f.sk", "d.dt"))
        assert theory.implies(equiv("f.sk", "d.dt"))

    def test_filter_constant_enables_reduction(self):
        theory = build_theory(
            [constant_statement("t.year"), qualify_statement(od("a", "b"), "t")]
        )
        from repro.optimizer.reduce_order import reduce_order_od

        assert reduce_order_od(theory, ["t.year", "t.a", "t.b"]) == ("t.a",)

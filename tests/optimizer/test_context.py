"""Query-scoped theory assembly: qualification, join equivalences,
constants."""
from __future__ import annotations

import pytest

from repro.core.attrs import attrlist
from repro.core.dependency import compat, equiv, fd, od
from repro.optimizer.context import (
    alias_constraints,
    build_theory,
    constant_statement,
    join_equivalence,
    qualify_statement,
)


class TestQualify:
    def test_od(self):
        assert qualify_statement(od("a", "b"), "t") == od("t.a", "t.b")

    def test_equiv(self):
        assert qualify_statement(equiv("a", "b"), "t") == equiv("t.a", "t.b")

    def test_compat(self):
        assert qualify_statement(compat("a", "b"), "t") == compat("t.a", "t.b")

    def test_fd(self):
        qualified = qualify_statement(fd("a,b", "c"), "t")
        assert qualified == fd("t.a,t.b", "t.c")

    def test_rejects_junk(self):
        with pytest.raises(TypeError):
            qualify_statement("nonsense", "t")

    def test_lists_keep_order(self):
        qualified = qualify_statement(od("b,a", "c"), "t")
        assert tuple(qualified.lhs) == ("t.b", "t.a")


class TestBuildingBlocks:
    def test_join_equivalence(self):
        statement = join_equivalence("f.sk", "d.sk")
        assert statement == equiv("f.sk", "d.sk")

    def test_constant(self):
        statement = constant_statement("t.year")
        assert tuple(statement.lhs) == ()
        assert tuple(statement.rhs) == ("t.year",)

    def test_alias_constraints_pull_from_catalog(self):
        from repro.engine.database import Database
        from repro.engine.schema import Schema
        from repro.engine.types import DataType

        db = Database()
        table = db.create_table(
            "t", Schema.of(("a", DataType.INT), ("b", DataType.INT))
        )
        table.load([(1, 1), (2, 2)])
        db.declare("t", od("a", "b"))
        statements = alias_constraints(db, "x", "t")
        assert statements == [od("x.a", "x.b")]


class TestInterningEpoch:
    """``build_theory(reuse=True)`` interning is epoch-invalidated: the
    theory cache and the plan cache share the catalog clock, so they can
    never disagree about which cached reasoning is stale."""

    def test_same_epoch_interns_same_instance(self):
        from repro.optimizer.context import clear_theory_cache

        clear_theory_cache()
        statements = (od("ctx_a", "ctx_b"),)
        assert build_theory(statements) is build_theory(statements)

    def test_epoch_bump_invalidates_interning(self):
        from repro.engine.epoch import bump_epoch
        from repro.optimizer.context import clear_theory_cache

        clear_theory_cache()
        statements = (od("ctx_a", "ctx_b"),)
        stale = build_theory(statements)
        bump_epoch("test-context")
        assert build_theory(statements) is not stale

    def test_catalog_mutation_invalidates_interning(self):
        """The end-to-end contract: a DDL statement, not a manual bump."""
        from repro.engine.database import Database
        from repro.engine.schema import Schema
        from repro.engine.types import DataType

        statements = (od("ctx_c", "ctx_d"),)
        stale = build_theory(statements)
        Database().create_table("ctx_t", Schema.of(("x", DataType.INT)))
        assert build_theory(statements) is not stale


class TestComposedTheory:
    def test_join_equivalence_transfers_constraints(self):
        """The scenario behind the date rewrite: a constraint on the
        dimension's key transfers across the join equality."""
        theory = build_theory(
            [
                qualify_statement(equiv("sk", "dt"), "d"),
                join_equivalence("f.sk", "d.sk"),
            ]
        )
        assert theory.implies(od("f.sk", "d.dt"))
        assert theory.implies(equiv("f.sk", "d.dt"))

    def test_filter_constant_enables_reduction(self):
        theory = build_theory(
            [constant_statement("t.year"), qualify_statement(od("a", "b"), "t")]
        )
        from repro.optimizer.reduce_order import reduce_order_od

        assert reduce_order_od(theory, ["t.year", "t.a", "t.b"]) == ("t.a",)

"""Plan cost estimation: sanity, monotonicity, and agreement with measured
work ordering on the paper's plans."""
from __future__ import annotations

import pytest

from repro.engine.database import Database
from repro.engine.logical import bind
from repro.engine.sql.parser import parse
from repro.optimizer.costing import estimate_plan
from repro.optimizer.planner import Planner
from repro.workloads.datedim import build_date_dim
from repro.workloads.tpcds_lite import build_tpcds_lite


@pytest.fixture(scope="module")
def date_db():
    db = Database()
    build_date_dim(db, days=365 * 3)
    return db


@pytest.fixture(scope="module")
def tpcds():
    return build_tpcds_lite(days=200, sales_rows=20_000)


def plan_for(db, sql, mode):
    return Planner(db, mode=mode).plan(bind(parse(sql)))


class TestBasics:
    def test_seq_scan_rows(self, date_db):
        plan = plan_for(date_db, "SELECT d_year FROM date_dim", "naive")
        estimate = estimate_plan(date_db, plan)
        assert estimate.rows == len(date_db.table("date_dim"))

    def test_filter_reduces_rows(self, date_db):
        base = estimate_plan(
            date_db, plan_for(date_db, "SELECT d_year FROM date_dim", "naive")
        )
        filtered = estimate_plan(
            date_db,
            plan_for(date_db, "SELECT d_year FROM date_dim WHERE d_year = 1998", "naive"),
        )
        assert filtered.rows < base.rows

    def test_range_selectivity_scales(self, tpcds):
        db = tpcds.database
        lo1, hi1 = tpcds.date_range(50, 10)
        lo2, hi2 = tpcds.date_range(50, 100)
        narrow = estimate_plan(db, plan_for(
            db,
            f"SELECT ss_quantity FROM store_sales WHERE ss_sold_date_sk BETWEEN "
            f"{tpcds.sk_base + 50} AND {tpcds.sk_base + 59}",
            "od",
        ))
        wide = estimate_plan(db, plan_for(
            db,
            f"SELECT ss_quantity FROM store_sales WHERE ss_sold_date_sk BETWEEN "
            f"{tpcds.sk_base + 50} AND {tpcds.sk_base + 149}",
            "od",
        ))
        assert narrow.rows < wide.rows

    def test_limit_caps_rows(self, date_db):
        plan = plan_for(date_db, "SELECT d_year FROM date_dim LIMIT 5", "naive")
        assert estimate_plan(date_db, plan).rows == 5

    def test_aggregate_group_estimate(self, date_db):
        plan = plan_for(
            date_db, "SELECT d_year, COUNT(*) AS n FROM date_dim GROUP BY d_year", "naive"
        )
        estimate = estimate_plan(date_db, plan)
        years = date_db.stats("date_dim").column("d_year").distinct
        assert estimate.rows == years

    def test_costs_positive(self, date_db):
        plan = plan_for(
            date_db,
            "SELECT d_year, COUNT(*) AS n FROM date_dim GROUP BY d_year ORDER BY d_year",
            "naive",
        )
        estimate = estimate_plan(date_db, plan)
        assert estimate.cost.total > 0


class TestAgreementWithMeasurement:
    EXAMPLE1 = (
        "SELECT d_year, d_qoy, d_moy, COUNT(*) AS days FROM date_dim d "
        "GROUP BY d_year, d_qoy, d_moy ORDER BY d_year, d_qoy, d_moy"
    )

    def test_example1_cost_ranking_matches_work(self, date_db):
        """Estimated costs must rank the three modes the same way the
        measured work does (od < fd < naive)."""
        estimates = {}
        measured = {}
        for mode in ("naive", "fd", "od"):
            plan = plan_for(date_db, self.EXAMPLE1, mode)
            estimates[mode] = estimate_plan(date_db, plan).cost.total
            _, metrics = plan.run()
            measured[mode] = metrics.work
        assert estimates["od"] < estimates["naive"]
        assert measured["od"] < measured["naive"]
        assert (estimates["od"] < estimates["fd"]) == (
            measured["od"] < measured["fd"]
        )

    def test_date_rewrite_cost_drop(self, tpcds):
        db = tpcds.database
        lo, hi = tpcds.date_range(60, 20)
        sql = (
            "SELECT SUM(ss_sales_price) AS r FROM store_sales ss "
            "JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk "
            f"WHERE d.d_date BETWEEN DATE '{lo}' AND DATE '{hi}'"
        )
        base = estimate_plan(db, plan_for(db, sql, "fd"))
        rewritten = estimate_plan(db, plan_for(db, sql, "od"))
        assert rewritten.cost.total < base.cost.total

"""Estimator edge cases: the selectivity bugs this PR fixes plus the
histogram/sketch/FD/OD layers built on top.

The two seed bugs, as reported:

* ``ColumnStats(1, 5, 5).range_selectivity(10, 20)`` returned 1.0 — a
  constant column matched *any* window because ``span <= 0`` short-
  circuited to 1.0;
* ``WHERE k BETWEEN 5 AND 5`` estimated ≈0 rows while ``WHERE k = 5``
  estimated ``rows/ndv`` — a zero-width window under the uniform
  interpolation, un-floored.

Everything here runs in both estimation modes where meaningful: the bug
fixes hold in ``"uniform"`` mode too (they are model-independent), the
distribution-aware cases pin ``"histogram"`` mode.
"""
from __future__ import annotations

import datetime

import pytest

from repro.engine.database import Database
from repro.engine.histogram import (
    KMVSketch,
    build_histogram,
    build_sketch,
    merge_join_rows,
)
from repro.engine.schema import Schema
from repro.engine.stats import (
    ColumnStats,
    JoinKeyStats,
    collect_stats,
    estimate_equijoin,
    set_estimation_mode,
)
from repro.engine.table import Table
from repro.engine.types import DataType
from repro.workloads.microbench import build_dim, build_fact


@pytest.fixture(autouse=True)
def _histogram_mode():
    """Each test starts from the default mode and restores it."""
    previous = set_estimation_mode("histogram")
    yield
    set_estimation_mode(previous)


def _stats(values, mode="histogram"):
    """ColumnStats over a literal value list, via the real collector."""
    table = Table("t", Schema.of(("k", DataType.INT)))
    table.load((v,) for v in values)
    set_estimation_mode(mode)
    return collect_stats(table).column("k")


# ----------------------------------------------------------------------
# Satellite 1: constant columns
# ----------------------------------------------------------------------
class TestConstantColumns:
    @pytest.mark.parametrize("mode", ["uniform", "histogram"])
    def test_disjoint_window_is_zero(self, mode):
        """The reported repro: a window excluding the only value."""
        set_estimation_mode(mode)
        assert ColumnStats(1, 5, 5).range_selectivity(10, 20) == 0.0

    @pytest.mark.parametrize("mode", ["uniform", "histogram"])
    def test_covering_window_is_one(self, mode):
        set_estimation_mode(mode)
        assert ColumnStats(1, 5, 5).range_selectivity(0, 20) == 1.0
        assert ColumnStats(1, 5, 5).range_selectivity(5, 5) == 1.0
        assert ColumnStats(1, 5, 5).range_selectivity(None, None) == 1.0

    def test_below_and_above(self):
        stats = ColumnStats(1, 5, 5)
        assert stats.range_selectivity(None, 4) == 0.0
        assert stats.range_selectivity(6, None) == 0.0

    def test_exclusive_endpoint_touching_value(self):
        stats = ColumnStats(1, 5, 5)
        # (5, 20] excludes the only value; [5, 20] includes it.
        assert stats.range_selectivity(5, 20, low_inclusive=False) == 0.0
        assert stats.range_selectivity(0, 5, high_inclusive=False) == 0.0
        assert stats.range_selectivity(5, 20) == 1.0


# ----------------------------------------------------------------------
# Satellite 2: point ranges floor at equality
# ----------------------------------------------------------------------
class TestPointRanges:
    @pytest.mark.parametrize("mode", ["uniform", "histogram"])
    def test_point_range_equals_equality(self, mode):
        stats = _stats([1, 2, 3, 4, 5] * 20, mode)
        assert stats.range_selectivity(3, 3) == stats.equality_selectivity(3)
        assert stats.range_selectivity(3, 3) > 0.0

    def test_between_matches_eq_at_plan_level(self):
        """`BETWEEN x AND x` and `= x` produce identical estimates."""
        db = Database("t")
        table = Table("t", Schema.of(("k", DataType.INT), ("v", DataType.INT)))
        table.load((i % 100, i) for i in range(10_000))
        db.tables["t"] = table
        between = db.plan("SELECT v FROM t WHERE k BETWEEN 5 AND 5")
        eq = db.plan("SELECT v FROM t WHERE k = 5")
        assert between.plan_info.estimate is not None
        assert between.plan_info.estimate.rows == eq.plan_info.estimate.rows
        assert between.plan_info.estimate.rows == pytest.approx(100.0)

    def test_closed_window_floors_at_equality(self):
        stats = _stats(list(range(1000)), "uniform")
        narrow = stats.range_selectivity(500, 500)
        assert narrow >= stats.equality_selectivity()


# ----------------------------------------------------------------------
# Disjoint ranges and window edges
# ----------------------------------------------------------------------
class TestDisjointRanges:
    @pytest.mark.parametrize("mode", ["uniform", "histogram"])
    def test_window_above_domain(self, mode):
        stats = _stats(list(range(100)), mode)
        assert stats.range_selectivity(200, 300) == 0.0
        assert stats.range_selectivity(200, None) == 0.0

    @pytest.mark.parametrize("mode", ["uniform", "histogram"])
    def test_window_below_domain(self, mode):
        stats = _stats(list(range(100, 200)), mode)
        assert stats.range_selectivity(0, 50) == 0.0
        assert stats.range_selectivity(None, 50) == 0.0

    def test_exclusive_bound_at_domain_edge(self):
        stats = _stats(list(range(100)))
        # k > 99 is empty; k >= 99 is one value.
        assert stats.range_selectivity(99, None, low_inclusive=False) == 0.0
        assert stats.range_selectivity(99, None) > 0.0


# ----------------------------------------------------------------------
# Date domains
# ----------------------------------------------------------------------
class TestDateDomains:
    def _dates(self, mode="histogram"):
        base = datetime.date(2001, 1, 1)
        days = [base + datetime.timedelta(days=i) for i in range(365)]
        table = Table("t", Schema.of(("d", DataType.DATE)))
        table.load((d,) for d in days)
        set_estimation_mode(mode)
        return collect_stats(table).column("d")

    @pytest.mark.parametrize("mode", ["uniform", "histogram"])
    def test_window_interpolates_by_days(self, mode):
        stats = self._dates(mode)
        lo = datetime.date(2001, 1, 1)
        hi = datetime.date(2001, 2, 5)  # 36 of 365 days
        sel = stats.range_selectivity(lo, hi)
        assert sel == pytest.approx(36 / 365, rel=0.25)

    def test_point_date(self):
        stats = self._dates()
        day = datetime.date(2001, 6, 15)
        assert stats.range_selectivity(day, day) == pytest.approx(
            1 / 365, rel=0.5
        )

    def test_disjoint_date_window(self):
        stats = self._dates()
        assert (
            stats.range_selectivity(
                datetime.date(2005, 1, 1), datetime.date(2005, 12, 31)
            )
            == 0.0
        )


# ----------------------------------------------------------------------
# < vs <= vs <> and AND/OR/NOT composition
# ----------------------------------------------------------------------
class TestOperators:
    def test_lt_vs_le(self):
        stats = _stats([1, 2, 3, 4, 5] * 100)
        le = stats.range_selectivity(None, 3)
        lt = stats.range_selectivity(None, 3, high_inclusive=False)
        assert lt < le
        assert le - lt == pytest.approx(stats.equality_selectivity(3), rel=0.3)

    def test_plan_level_operators(self):
        db = Database("t")
        table = Table("t", Schema.of(("k", DataType.INT), ("v", DataType.INT)))
        table.load((i % 10, i) for i in range(1000))
        db.tables["t"] = table

        def rows(sql):
            return db.plan(sql, use_cache=False).plan_info.estimate.rows

        lt = rows("SELECT v FROM t WHERE k < 5")
        le = rows("SELECT v FROM t WHERE k <= 5")
        ne = rows("SELECT v FROM t WHERE k <> 5")
        eq = rows("SELECT v FROM t WHERE k = 5")
        assert lt < le
        assert eq == pytest.approx(100.0)
        assert ne == pytest.approx(900.0)

    def test_composition_bounds(self):
        """AND/OR/NOT compositions stay inside [0, child_rows]."""
        db = Database("t")
        table = Table("t", Schema.of(("k", DataType.INT), ("v", DataType.INT)))
        table.load((i % 10, i % 7) for i in range(700))
        db.tables["t"] = table
        queries = [
            "SELECT k FROM t WHERE k = 3 AND v = 4",
            "SELECT k FROM t WHERE k = 3 OR v = 4",
            "SELECT k FROM t WHERE NOT k = 3",
            "SELECT k FROM t WHERE (k < 5 OR k > 8) AND NOT v = 2",
        ]
        for sql in queries:
            estimate = db.plan(sql, use_cache=False).plan_info.estimate
            assert estimate is not None, sql
            assert 0.0 <= estimate.rows <= 700.0, sql


# ----------------------------------------------------------------------
# Empty tables
# ----------------------------------------------------------------------
class TestEmptyTables:
    def test_empty_column_stats(self):
        table = Table("t", Schema.of(("k", DataType.INT)))
        stats = collect_stats(table)
        assert stats.row_count == 0
        column = stats.column("k")
        assert column.minimum is None
        assert column.histogram is None
        assert column.range_selectivity(1, 10) == 1.0  # no info: neutral

    def test_empty_table_plan_estimates_zero(self):
        db = Database("t")
        db.tables["t"] = Table(
            "t", Schema.of(("k", DataType.INT), ("v", DataType.INT))
        )
        estimate = db.plan(
            "SELECT v FROM t WHERE k BETWEEN 1 AND 5", use_cache=False
        ).plan_info.estimate
        assert estimate is not None
        assert estimate.rows == 0.0


# ----------------------------------------------------------------------
# Histogram behavior on skew
# ----------------------------------------------------------------------
class TestHistograms:
    def test_heavy_hitter_equality(self):
        values = [7] * 900 + list(range(100))
        stats = _stats(values)
        hot = stats.equality_selectivity(7)
        cold = stats.equality_selectivity(50)
        assert hot == pytest.approx(900 / 1000, rel=0.1)
        assert cold < 0.01
        assert stats.equality_selectivity(5000) == 0.0  # outside domain

    def test_skewed_range(self):
        values = sorted(list(range(100)) * 1 + list(range(900, 1000)) * 9)
        stats = _stats(values)
        sparse = stats.range_selectivity(0, 99)
        dense = stats.range_selectivity(900, 999)
        assert sparse == pytest.approx(0.1, rel=0.3)
        assert dense == pytest.approx(0.9, rel=0.2)

    def test_uniform_mode_ignores_histogram(self):
        values = [7] * 900 + list(range(100))
        stats = _stats(values, "uniform")
        assert stats.histogram is not None  # collected either way
        assert stats.equality_selectivity(7) == pytest.approx(
            1 / stats.distinct
        )

    def test_mode_flip_bumps_epoch(self):
        from repro.engine.epoch import current_epoch

        before = current_epoch()
        set_estimation_mode("uniform")
        assert current_epoch() > before
        same = current_epoch()
        set_estimation_mode("uniform")  # no-op: same mode
        assert current_epoch() == same
        set_estimation_mode("histogram")
        assert current_epoch() > same

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            set_estimation_mode("psychic")


# ----------------------------------------------------------------------
# Sketches and FD/OD join bounds
# ----------------------------------------------------------------------
class TestJoinBounds:
    def test_sketch_exact_below_k(self):
        sketch = build_sketch(list(range(100)) * 5)
        assert sketch.exact
        assert sketch.ndv() == 100.0

    def test_sketch_estimates_above_k(self):
        sketch = build_sketch(list(range(10_000)))
        assert not sketch.exact
        assert sketch.ndv() == pytest.approx(10_000, rel=0.2)

    def test_sketch_intersection_disjoint(self):
        a = build_sketch(list(range(100)))
        b = build_sketch(list(range(1000, 1100)))
        assert a.intersection_ndv(b) == 0.0

    def test_sketch_intersection_overlap(self):
        a = build_sketch(list(range(200)))
        b = build_sketch(list(range(100, 300)))
        assert a.intersection_ndv(b) == pytest.approx(100, rel=0.01)

    def test_fd_key_caps_join(self):
        """A declared key on the build side caps output at probe rows."""
        from repro.core.dependency import fd

        dim = Table(
            "dim", Schema.of(("pk", DataType.INT), ("attr", DataType.INT))
        )
        dim.load((i, i * 2) for i in range(50))
        dim.declare(fd("pk", "attr"))
        dim_stats = collect_stats(dim).column("pk")
        assert dim_stats.is_key
        fact = Table("fact", Schema.of(("fk", DataType.INT)))
        fact.load((i % 50,) for i in range(5000))
        fact_stats = collect_stats(fact).column("fk")
        rows = estimate_equijoin(
            5000, 50, [JoinKeyStats(fact_stats, dim_stats)]
        )
        assert rows <= 5000.0

    def test_merge_join_disjoint_domains(self):
        left = build_histogram(sorted(range(1000)))
        right = build_histogram(sorted(range(5000, 6000)))
        assert merge_join_rows(1000, 1000, left, right) == 0.0

    def test_merge_join_partial_overlap(self):
        left = build_histogram(sorted(range(1000)))
        right = build_histogram(sorted(range(900, 1900)))
        estimate = merge_join_rows(1000, 1000, left, right)
        assert estimate == pytest.approx(100, rel=0.3)

    def test_od_ordered_keys_use_merge(self):
        """Full estimate path: OD-ordered disjoint keys estimate ~0."""
        db = Database("t")
        left = Table("l", Schema.of(("k", DataType.INT)))
        left.load((i,) for i in range(1000))
        right = Table("r", Schema.of(("k", DataType.INT)))
        right.load((i,) for i in range(5000, 6000))
        db.tables["l"], db.tables["r"] = left, right
        db.create_index("l_k", "l", ["k"], clustered=True)
        db.create_index("r_k", "r", ["k"], clustered=True)
        l_stats = db.stats("l").column("k")
        r_stats = db.stats("r").column("k")
        assert l_stats.od_ordered and r_stats.od_ordered
        rows = estimate_equijoin(1000, 1000, [JoinKeyStats(l_stats, r_stats)])
        assert rows == 1.0  # the global ≥1-row floor, nothing more


# ----------------------------------------------------------------------
# Estimate-vs-actual sanity on the microbench workload
# ----------------------------------------------------------------------
class TestMicrobenchSanity:
    def test_filter_estimate_within_qerror(self):
        db = Database("micro")
        db.tables["fact"] = build_fact(20_000, seed=11)
        result = db.execute(
            "SELECT income FROM fact WHERE income BETWEEN 100000 AND 200000"
        )
        estimate = db.plan(
            "SELECT income FROM fact WHERE income BETWEEN 100000 AND 200000"
        ).plan_info.estimate
        actual = max(1, len(result.rows))
        q = max(estimate.rows / actual, actual / estimate.rows)
        assert q < 2.0

    def test_join_estimate_within_qerror(self):
        db = Database("micro")
        db.tables["fact"] = build_fact(20_000, seed=11)
        db.tables["dim"] = build_dim()
        sql = (
            "SELECT d.label, COUNT(*) AS n FROM fact f "
            "JOIN dim d ON f.bracket = d.k GROUP BY label ORDER BY label"
        )
        plan = db.plan(sql)
        join_est = None
        for decision in plan.plan_info.join_orders:
            join_est = decision.chosen_rows
        actual = 20_000  # bracket is total on the dim side: 1 match per row
        if join_est is None:
            pytest.skip("no join-order decision recorded")
        q = max(join_est / actual, actual / join_est)
        assert q < 3.0

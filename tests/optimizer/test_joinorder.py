"""Cost-based join ordering: graph extraction, DP/greedy search, the
OD-aware interesting-order frontier, EXPLAIN reporting, cache keying, and
the random-join-graph equivalence property."""
from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.database import Database
from repro.engine.logical import bind
from repro.engine.schema import Schema
from repro.engine.sql.parser import parse
from repro.engine.types import DataType
from repro.optimizer.joingraph import extract_join_graph
from repro.optimizer.planner import Planner
from repro.optimizer.rewrites import NameResolver, collect_aliases, push_filters
from repro.workloads.snowflake import SNOWFLAKE_QUERIES, build_snowflake

QUERIES = {qid: (template, keys) for qid, template, keys in SNOWFLAKE_QUERIES}


@pytest.fixture(scope="module")
def snowflake():
    return build_snowflake(days=150, sales_rows=4_000, items=60, brands=12, stores=8)


def _sql(workload, qid: str) -> str:
    lo, hi = workload.date_range(30, 40)
    return QUERIES[qid][0].format(lo=lo, hi=hi)


# ----------------------------------------------------------------------
# Join-graph extraction
# ----------------------------------------------------------------------
class TestJoinGraph:
    def _graph(self, database, sql):
        logical = bind(parse(sql))
        resolver = NameResolver(database, collect_aliases(logical))
        pushed = push_filters(logical, resolver)
        # descend through the unary chain to the topmost join
        node = pushed
        while not hasattr(node, "left_columns"):
            node = node.children()[0]
        return extract_join_graph(node, resolver)

    def test_extracts_relations_and_edges(self, snowflake):
        graph = self._graph(snowflake.database, _sql(snowflake, "SN6"))
        assert [r.alias for r in graph.relations] == ["r", "st", "f", "i", "b"]
        assert len(graph.edges) == 4
        assert graph.is_connected()
        # edges are fully qualified and owner-attributed
        edge = graph.edges_between({"r"}, {"st"})[0]
        assert {edge.left_column, edge.right_column} == {
            "r.r_region_sk", "st.st_region_sk"
        }

    def test_local_predicates_attached(self, snowflake):
        graph = self._graph(snowflake.database, _sql(snowflake, "SN2"))
        by_alias = {r.alias: r for r in graph.relations}
        assert by_alias["b"].predicate is not None  # pushed brand filter
        assert by_alias["f"].predicate is None

    def test_non_join_returns_none(self, snowflake):
        logical = bind(parse("SELECT r_name FROM region r"))
        resolver = NameResolver(snowflake.database, collect_aliases(logical))
        assert extract_join_graph(logical, resolver) is None

    def test_syntactic_label_is_left_deep(self, snowflake):
        graph = self._graph(snowflake.database, _sql(snowflake, "SN2"))
        assert graph.syntactic_label() == "((f ⋈ i) ⋈ b)"


# ----------------------------------------------------------------------
# The search: plan quality on the snowflake workload
# ----------------------------------------------------------------------
class TestSearchWins:
    def test_selective_dim_joined_first(self, snowflake):
        """SN2: parse order materializes fact ⋈ item before the selective
        brand filter; the search must join item ⋈ brand first and do
        measurably less hash work."""
        db = snowflake.database
        sql = _sql(snowflake, "SN2")
        cost = db.execute(sql)
        syn = db.execute(sql, join_order="syntactic")
        assert sorted(cost.rows) == sorted(syn.rows)
        decision = cost.plan.plan_info.join_orders[0]
        assert decision.chosen != decision.syntactic
        assert decision.chosen_cost < decision.syntactic_cost
        assert cost.metrics.work < syn.metrics.work

    def test_sort_eliminated_by_order_providing_probe(self, snowflake):
        """SN3 (the acceptance criterion): ORDER BY the fact's clustered
        key with the fact parsed second — the search puts the date-ordered
        access path on the probe side and the sort disappears, visible in
        EXPLAIN and in the Metrics counters."""
        db = snowflake.database
        sql = _sql(snowflake, "SN3")
        cost = db.execute(sql)
        syn = db.execute(sql, join_order="syntactic")
        assert sorted(cost.rows) == sorted(syn.rows)
        assert cost.metrics.get("sorts") == 0
        assert syn.metrics.get("sorts") == 1
        assert "Sort" not in db.explain(sql)
        assert "Sort" in db.explain(sql, join_order="syntactic")
        assert cost.plan.plan_info.avoided_sorts >= 1

    def test_stream_aggregate_from_reordered_probe(self, snowflake):
        """SN5: grouping by the fact's clustered key streams (and skips
        the sort) only under the reordered plan."""
        db = snowflake.database
        sql = _sql(snowflake, "SN5")
        cost = db.execute(sql)
        syn = db.execute(sql, join_order="syntactic")
        assert sorted(cost.rows) == sorted(syn.rows)
        assert cost.metrics.get("sorts") < syn.metrics.get("sorts")
        assert cost.metrics.work < syn.metrics.work

    def test_bushy_plan_beats_left_deep_chain(self, snowflake):
        """SN1: every left-deep order passes the fact through a hash
        twice; the search finds the bushy shape (fact probing the
        pre-joined dimension chain) that touches it once."""
        db = snowflake.database
        sql = _sql(snowflake, "SN1")
        cost = db.execute(sql)
        syn = db.execute(sql, join_order="syntactic")
        assert sorted(cost.rows) == sorted(syn.rows)
        decision = cost.plan.plan_info.join_orders[0]
        assert decision.chosen != decision.syntactic
        assert "(st ⋈ r)" in decision.chosen or "(r ⋈ st)" in decision.chosen
        assert decision.chosen_cost < decision.syntactic_cost

    def test_good_parse_order_kept(self, snowflake):
        """A two-relation fact-probe join is already in its best shape —
        the search must agree with the parse order and say so.  The
        rewrite pack would eliminate this join outright (bare dimension
        behind a declared FK), so it is disabled: the join-order search
        is what's under test here."""
        db = snowflake.database
        sql = (
            "SELECT COUNT(*) AS n FROM sales f "
            "JOIN store st ON f.f_store_sk = st.st_store_sk"
        )
        plan = db.plan(sql, use_cache=False, rewrites="off")
        decision = plan.plan_info.join_orders[0]
        assert decision.chosen == decision.syntactic == "(f ⋈ st)"

    def test_whole_workload_never_worse(self, snowflake):
        """Across the full query set the cost-based order must never do
        more measured work than the parse order (and strictly less in
        aggregate — it found the planted wins)."""
        db = snowflake.database
        total_cost = total_syn = 0.0
        for qid in QUERIES:
            sql = _sql(snowflake, qid)
            cost = db.execute(sql)
            syn = db.execute(sql, join_order="syntactic")
            assert cost.metrics.work <= syn.metrics.work * 1.001, qid
            total_cost += cost.metrics.work
            total_syn += syn.metrics.work
        assert total_cost < total_syn


# ----------------------------------------------------------------------
# OD-aware interesting orders
# ----------------------------------------------------------------------
class TestODInterestingOrders:
    def test_od_implied_order_counts_as_interesting(self, snowflake):
        """ORDER BY d_week_seq: no index provides it positionally, but the
        theory chains [f_date_sk] ↔ [d_date_sk] ↔ [d_date] ↦ [d_week_seq],
        so in od mode a surrogate-ordered probe is an interesting order
        and the sort disappears; fd mode cannot derive it and must sort."""
        db = snowflake.database
        sql = (
            "SELECT d.d_week_seq, f.f_qty FROM item i "
            "JOIN sales f ON i.i_item_sk = f.f_item_sk "
            "JOIN date_dim d ON f.f_date_sk = d.d_date_sk "
            "ORDER BY d_week_seq"
        )
        od_result = db.execute(sql, optimize=True)
        fd_result = db.execute(sql, optimize=False)
        assert od_result.metrics.get("sorts") == 0
        assert fd_result.metrics.get("sorts") == 1
        assert sorted(od_result.rows) == sorted(fd_result.rows)

    def test_merge_join_from_interesting_orders(self, snowflake):
        """Both clustered sk indexes provide the join-key order, so the
        frontier keeps the ordered entries and a merge join wins."""
        db = snowflake.database
        sql = (
            "SELECT COUNT(*) AS n FROM sales f "
            "JOIN date_dim d ON f.f_date_sk = d.d_date_sk"
        )
        text = db.explain(sql)
        assert "MergeJoin" in text
        assert "Sort" not in text


# ----------------------------------------------------------------------
# EXPLAIN, estimates, cache keys, validation
# ----------------------------------------------------------------------
class TestReporting:
    def test_explain_reports_decision_and_estimates(self, snowflake):
        text = snowflake.database.explain(_sql(snowflake, "SN2"), verbose=True)
        assert "join order: cost-based (dp over 3 relations)" in text
        assert "syntactic" in text
        assert "estimate: ≈" in text

    def test_estimate_attached_to_every_plan(self, snowflake):
        plan = snowflake.database.plan("SELECT COUNT(*) AS n FROM sales")
        assert plan.plan_info.estimate is not None
        assert plan.plan_info.estimate.rows >= 1

    def test_join_orders_never_share_plans(self, snowflake):
        db = snowflake.database
        sql = _sql(snowflake, "SN2")
        db.plan_cache.clear()
        cost_plan = db.plan(sql)
        syn_plan = db.plan(sql, join_order="syntactic")
        assert cost_plan is not syn_plan
        assert db.plan(sql) is cost_plan
        assert db.plan(sql, join_order="syntactic") is syn_plan

    def test_invalid_join_order_rejected(self, snowflake):
        with pytest.raises(ValueError):
            snowflake.database.plan("SELECT COUNT(*) AS n FROM sales", join_order="best")
        with pytest.raises(ValueError):
            Planner(snowflake.database, join_order="best")

    def test_syntactic_mode_records_no_decision(self, snowflake):
        db = snowflake.database
        plan = db.plan(_sql(snowflake, "SN2"), join_order="syntactic", use_cache=False)
        assert plan.plan_info.join_orders == []


# ----------------------------------------------------------------------
# Greedy fallback above DP_MAX_RELATIONS
# ----------------------------------------------------------------------
def test_greedy_fallback_on_wide_chain():
    from repro.optimizer.joinorder import DP_MAX_RELATIONS

    count = DP_MAX_RELATIONS + 2
    db = Database("widechain")
    for i in range(count):
        table = db.create_table(
            f"t{i}", Schema.of((f"k{i}", DataType.INT), (f"v{i}", DataType.INT))
        )
        table.load((k, k * (i + 1)) for k in range(6))
    sql = "SELECT COUNT(*) AS n FROM t0"
    for i in range(1, count):
        sql += f" JOIN t{i} ON k{i - 1} = k{i}"
    cost = db.execute(sql)
    syn = db.execute(sql, join_order="syntactic")
    assert cost.rows == syn.rows == [(6,)]
    decision = cost.plan.plan_info.join_orders[0]
    assert decision.algorithm == "greedy"
    assert decision.relations == count


# ----------------------------------------------------------------------
# Property: random join graphs over random instances agree across
# join orders and execution modes
# ----------------------------------------------------------------------
@st.composite
def join_instances(draw):
    """A small random database + a random chain-join query over it."""
    table_count = draw(st.integers(min_value=2, max_value=4))
    tables = []
    for i in range(table_count):
        rows = draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=3),
                    st.integers(min_value=0, max_value=9),
                ),
                min_size=0,
                max_size=12,
            )
        )
        indexed = draw(st.booleans())
        tables.append((rows, indexed))
    # each table joins to a random earlier table's key
    targets = [draw(st.integers(min_value=0, max_value=i - 1)) for i in range(1, table_count)]
    filtered = draw(st.booleans())
    threshold = draw(st.integers(min_value=0, max_value=9))
    grouped = draw(st.booleans())
    ordered = draw(st.booleans())
    return tables, targets, filtered, threshold, grouped, ordered


@given(join_instances())
@settings(max_examples=25, deadline=None)
def test_random_join_graphs_equivalent(instance):
    """Cost-based and syntactic orders return identical result multisets
    (and identical rows under ORDER BY) on random join graphs over random
    instances, in row, batch, and parallel execution modes."""
    tables, targets, filtered, threshold, grouped, ordered = instance
    db = Database("joinfuzz")
    for i, (rows, indexed) in enumerate(tables):
        table = db.create_table(
            f"t{i}", Schema.of((f"k{i}", DataType.INT), (f"v{i}", DataType.INT))
        )
        table.load(rows)
        if indexed:
            db.create_index(f"t{i}_k", f"t{i}", [f"k{i}"])

    if grouped:
        select = "k0, SUM(v0) AS s, COUNT(*) AS n"
        tail = " GROUP BY k0" + (" ORDER BY k0" if ordered else "")
        order_keys = ("k0",) if ordered else ()
    else:
        select = ", ".join(f"k{i}, v{i}" for i in range(len(tables)))
        tail = " ORDER BY v0" if ordered else ""
        order_keys = ("v0",) if ordered else ()
    sql = f"SELECT {select} FROM t0"
    for i, target in enumerate(targets, start=1):
        sql += f" JOIN t{i} ON k{target} = k{i}"
    if filtered:
        sql += f" WHERE v0 >= {threshold}"
    sql += tail

    cost = db.execute(sql)
    syn = db.execute(sql, join_order="syntactic")
    assert cost.columns == syn.columns
    assert sorted(cost.rows, key=repr) == sorted(syn.rows, key=repr)
    for result in (cost, syn):
        positions = [result.columns.index(k) for k in order_keys]
        values = [tuple(row[p] for p in positions) for row in result.rows]
        assert values == sorted(values)
    # mode matrix over the cost-ordered plan: bit- and counter-identical
    for kwargs in ({"batch_size": 3}, {"batch_size": 3, "workers": 2}):
        other = db.execute(sql, **kwargs)
        assert other.rows == cost.rows
        assert other.metrics.counters == cost.metrics.counters

"""Planner-level oracle memoization: repeated plannings of the same
TPC-DS-lite template must hit the result cache, plan identically, and
report their oracle activity through EXPLAIN."""
from __future__ import annotations

import pytest

from repro.core.dependency import od
from repro.optimizer.context import build_theory, clear_theory_cache, theory_cache_len
from repro.workloads.tpcds_lite import DATE_QUERIES, build_tpcds_lite

REPEATS = 10


@pytest.fixture(scope="module")
def tpcds():
    return build_tpcds_lite(days=120, sales_rows=3000)


def _sql(workload, qid="Q9"):
    lo, hi = workload.date_range(20, 25)
    return dict(DATE_QUERIES)[qid].format(lo=lo, hi=hi)


class TestTheoryInterning:
    def test_same_statements_same_theory(self):
        clear_theory_cache()
        statements = (od("a", "b"), od("b", "c"))
        assert build_theory(statements) is build_theory(list(statements))
        assert theory_cache_len() == 1

    def test_reuse_false_is_isolated(self):
        statements = (od("a", "b"),)
        interned = build_theory(statements)
        fresh = build_theory(statements, reuse=False)
        assert fresh is not interned


class TestRepeatedTemplatePlanning:
    """``use_cache=False`` throughout: these tests exercise the *oracle*
    memoization layer, which only runs when planning actually happens —
    the whole-plan cache above it is covered by test_plan_cache.py and
    the differential harness."""

    def test_cache_hit_rate_above_half(self, tpcds):
        clear_theory_cache()
        db = tpcds.database
        sql = _sql(tpcds)
        infos = [
            db.plan(sql, use_cache=False).plan_info for _ in range(REPEATS)
        ]
        total = {key: sum(info.oracle[key] for info in infos) for key in infos[0].oracle}
        lookups = total["cache_hits"] + total["cache_misses"]
        assert lookups > 0
        hit_rate = total["cache_hits"] / lookups
        assert hit_rate > 0.5, total
        # a fully warmed plan does no sign-vector enumeration at all
        assert infos[-1].oracle["enumerations"] == 0
        assert infos[-1].oracle_hit_rate == 1.0

    def test_memoized_plans_identical(self, tpcds):
        clear_theory_cache()
        db = tpcds.database
        sql = _sql(tpcds, "Q3")
        cold = db.plan(sql, use_cache=False)
        warm = db.plan(sql, use_cache=False)
        assert cold.explain() == warm.explain()
        cold_rows, _ = cold.run()
        warm_rows, _ = warm.run()
        assert cold_rows == warm_rows

    def test_results_match_unoptimized(self, tpcds):
        db = tpcds.database
        sql = _sql(tpcds, "Q4")
        base = db.execute(sql, optimize=False)
        for _ in range(3):
            opt = db.execute(sql, optimize=True)
            assert sorted(opt.rows) == sorted(base.rows)


class TestExplainReporting:
    def test_verbose_explain_reports_oracle_and_rewrites(self, tpcds):
        db = tpcds.database
        sql = _sql(tpcds, "Q1")
        text = db.explain(sql, verbose=True)
        assert "oracle:" in text
        assert "join eliminated:" in text
        assert "hit rate" in text
        # non-verbose output stays exactly the plan tree
        assert "oracle:" not in db.explain(sql)

    def test_describe_reports_avoided_sorts(self, tpcds):
        db = tpcds.database
        sql = _sql(tpcds, "Q13")  # ORDER BY the clustered sk: sort vanishes
        plan = db.plan(sql)
        description = plan.plan_info.describe()
        assert "sorts avoided:" in description
        assert plan.plan_info.avoided_sorts >= 1

"""The physical-property IR: OrderSpec / PhysicalProperty algebra and the
mode-dispatched satisfaction layer."""
from __future__ import annotations

import pytest

from repro.core.dependency import fd, od
from repro.core.inference import ODTheory
from repro.optimizer.properties import (
    EMPTY_PROPERTY,
    EMPTY_SPEC,
    OrderSpec,
    PhysicalProperty,
    column_equivalent,
    groupable,
    reduce_keys,
    satisfies,
)


class TestOrderSpecAlgebra:
    def test_construction_and_validation(self):
        spec = OrderSpec(["a", "b"])
        assert tuple(spec) == ("a", "b")
        assert not spec.empty
        assert EMPTY_SPEC.empty
        with pytest.raises(TypeError):
            OrderSpec(["a", ""])
        with pytest.raises(TypeError):
            OrderSpec([1, 2])  # type: ignore[list-item]

    def test_normalized_drops_later_duplicates(self):
        assert OrderSpec(["a", "b", "a", "c", "b"]).normalized() == OrderSpec(
            ["a", "b", "c"]
        )

    def test_canonical_hashing(self):
        a = OrderSpec(["x", "y", "x"])
        b = OrderSpec(["x", "y"])
        assert a.canonical_key() == b.canonical_key()
        assert hash(a.normalized()) == hash(b)
        assert {a.normalized(): 1}[b] == 1  # keys dictionaries canonically

    def test_prefix_tests(self):
        spec = OrderSpec(["a", "b", "c"])
        assert OrderSpec(["a", "b"]).is_prefix_of(spec)
        assert spec.starts_with(["a", "b"])
        assert spec.starts_with([])
        assert not spec.starts_with(["b"])
        assert not spec.starts_with(["a", "b", "c", "d"])

    def test_common_prefix_and_concat(self):
        assert OrderSpec(["a", "b", "c"]).common_prefix(["a", "b", "x"]) == OrderSpec(
            ["a", "b"]
        )
        assert OrderSpec(["a", "b"]).concat(["b", "c"]) == OrderSpec(["a", "b", "c"])

    def test_rename_truncates_at_dropped_column(self):
        spec = OrderSpec(["t.a", "t.b", "t.c"])
        # t.b is not projected out: ordering beyond it is lost
        assert spec.rename({"t.a": "a", "t.c": "c"}) == OrderSpec(["a"])
        assert spec.rename({"t.a": "a", "t.b": "b", "t.c": "c"}) == OrderSpec(
            ["a", "b", "c"]
        )
        assert spec.rename({}) == EMPTY_SPEC

    def test_restrict_stops_at_first_outsider(self):
        spec = OrderSpec(["g1", "g2", "v", "g3"])
        assert spec.restrict({"g1", "g2", "g3"}) == OrderSpec(["g1", "g2"])
        assert spec.restrict(set()) == EMPTY_SPEC

    def test_attrlist_round_trip(self):
        from repro.core.attrs import AttrList

        assert OrderSpec(["a", "b"]).attrlist() == AttrList(["a", "b"])


class TestPhysicalProperty:
    def test_coercion_and_hashing(self):
        prop = PhysicalProperty(("a", "b"))  # type: ignore[arg-type]
        assert isinstance(prop.order, OrderSpec)
        assert prop == PhysicalProperty(OrderSpec(["a", "b"]))
        assert hash(prop) == hash(PhysicalProperty(OrderSpec(["a", "b"])))
        assert EMPTY_PROPERTY.empty and not prop.empty

    def test_renamed_and_restricted(self):
        prop = PhysicalProperty(OrderSpec(["t.a", "t.b"]))
        assert prop.renamed({"t.a": "a"}).order == OrderSpec(["a"])
        assert prop.restricted({"t.a"}).order == OrderSpec(["t.a"])
        assert prop.canonical_key() == (("t.a", "t.b"),)


class TestModeDispatch:
    @pytest.fixture
    def theory(self):
        return ODTheory([od("a", "b")])

    def test_naive_is_positional(self, theory):
        assert satisfies(None, ["a", "b"], ["a"], "naive")
        assert not satisfies(None, ["a"], ["b"], "naive")
        # no theory needed, OD reasoning unavailable
        assert not satisfies(None, ["a"], ["a", "b"], "naive")

    def test_od_uses_the_oracle(self):
        # Left Eliminate territory: given d ↦ b, a stream sorted by [a, d]
        # satisfies ORDER BY [a, b, d]; FDs alone cannot justify the drop.
        theory = ODTheory([od("d", "b")])
        assert satisfies(theory, ["a", "d"], ["a", "b", "d"], "od")
        assert not satisfies(theory, ["a", "d"], ["a", "b", "d"], "fd")

    def test_empty_requirement_always_satisfied(self):
        assert satisfies(None, [], [], "od")

    def test_mode_validation(self, theory):
        with pytest.raises(ValueError):
            satisfies(theory, ["a"], ["b"], "quantum")
        with pytest.raises(ValueError):
            satisfies(None, ["a"], ["b"], "od")

    def test_groupable_dispatch(self):
        theory = ODTheory([fd("g", "h")])
        assert groupable(theory, ["g"], ["g", "h"], "fd")
        assert not groupable(None, ["g"], ["g"], "naive")
        assert groupable(None, ["g"], [], "naive")

    def test_reduce_keys_dispatch(self):
        theory = ODTheory([od("d", "b")])
        # Left Eliminate: [a, b, d] -> [a, d] needs OD reasoning
        assert reduce_keys(theory, ["a", "b", "d"], "od") == ("a", "d")
        assert reduce_keys(theory, ["a", "b", "d"], "fd") == ("a", "b", "d")
        assert reduce_keys(None, ["a", "a", "b"], "naive") == ("a", "b")

    def test_column_equivalent(self):
        from repro.core.dependency import equiv

        theory = ODTheory([equiv("sk", "nat")])
        assert column_equivalent(theory, "sk", "nat")
        assert not column_equivalent(theory, "sk", "other")

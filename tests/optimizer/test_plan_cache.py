"""Unit tests for whole-plan memoization: fingerprints, LRU, stats,
epoch invalidation, and the Database threading."""
from __future__ import annotations

import pytest

from repro.core.dependency import od
from repro.engine.database import Database
from repro.engine.epoch import bump_epoch, current_epoch
from repro.engine.schema import Schema
from repro.engine.types import DataType
from repro.optimizer.plan_cache import PlanCache, canonical_tuple, fingerprint


def _db() -> Database:
    database = Database("pc")
    table = database.create_table(
        "t",
        Schema.of(("a", DataType.INT), ("b", DataType.INT), ("c", DataType.INT)),
    )
    table.load([(i, i * 3, (i * 7) % 13) for i in range(20)])
    database.declare("t", od("a", "b"))
    database.create_index("t_a", "t", ["a"], clustered=True)
    return database


def _logical(sql: str):
    from repro.engine.logical import bind
    from repro.engine.sql.parser import parse

    return bind(parse(sql))


# ----------------------------------------------------------------------
# Fingerprinting
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_deterministic(self):
        sql = "SELECT a, b FROM t ORDER BY a"
        assert fingerprint(_logical(sql)) == fingerprint(_logical(sql))

    def test_whitespace_and_case_insensitive(self):
        """Different SQL text, same logical tree, same fingerprint."""
        a = _logical("SELECT a, b FROM t ORDER BY a")
        b = _logical("select  a,\n b  from t order by a")
        assert fingerprint(a) == fingerprint(b)

    def test_literal_sensitive(self):
        a = _logical("SELECT a FROM t WHERE b = 1")
        b = _logical("SELECT a FROM t WHERE b = 2")
        assert fingerprint(a) != fingerprint(b)

    def test_alias_sensitive(self):
        a = _logical("SELECT x.a FROM t x ORDER BY x.a")
        b = _logical("SELECT y.a FROM t y ORDER BY y.a")
        assert fingerprint(a) != fingerprint(b)

    def test_structure_sensitive(self):
        plain = _logical("SELECT a FROM t")
        distinct = _logical("SELECT DISTINCT a FROM t")
        limited = _logical("SELECT a FROM t LIMIT 5")
        sorted_ = _logical("SELECT a FROM t ORDER BY a")
        prints = {fingerprint(n) for n in (plain, distinct, limited, sorted_)}
        assert len(prints) == 4

    def test_canonical_tuple_round_trips_all_nodes(self):
        sql = (
            "SELECT DISTINCT x.a AS g, COUNT(*) AS n FROM t x "
            "JOIN t y ON x.a = y.a WHERE x.b >= 3 "
            "GROUP BY g ORDER BY g LIMIT 7"
        )
        shape = canonical_tuple(_logical(sql))
        assert isinstance(shape, tuple) and shape[0] in ("limit",)

    def test_rejects_junk(self):
        with pytest.raises(TypeError):
            canonical_tuple("not a logical node")


# ----------------------------------------------------------------------
# The cache data structure
# ----------------------------------------------------------------------
class TestPlanCache:
    def test_miss_then_hit(self):
        cache = PlanCache(capacity=4)
        assert cache.lookup("f1", "od", 0) is None
        cache.store("f1", "od", 0, plan="P")
        entry = cache.lookup("f1", "od", 0)
        assert entry is not None and entry.plan == "P" and entry.serves == 1

    def test_modes_do_not_share_entries(self):
        cache = PlanCache(capacity=4)
        cache.store("f1", "od", 0, plan="od-plan")
        assert cache.lookup("f1", "fd", 0) is None

    def test_epoch_mismatch_invalidates(self):
        cache = PlanCache(capacity=4)
        cache.store("f1", "od", 0, plan="P")
        assert cache.lookup("f1", "od", 1) is None
        assert cache.stats()["stale_invalidations"] == 1
        assert len(cache) == 0  # dropped, not shadowed

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        cache.store("f1", "od", 0, plan="a")
        cache.store("f2", "od", 0, plan="b")
        cache.lookup("f1", "od", 0)  # f1 most recent
        cache.store("f3", "od", 0, plan="c")
        assert cache.lookup("f2", "od", 0) is None  # evicted
        assert cache.lookup("f1", "od", 0) is not None
        assert cache.stats()["evictions"] == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_stats_shape(self):
        cache = PlanCache(capacity=3)
        cache.store("f1", "od", 0, plan="a")
        cache.lookup("f1", "od", 0)
        cache.lookup("f2", "od", 0)
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["stores"] == 1 and stats["size"] == 1
        assert stats["capacity"] == 3 and stats["hit_rate"] == 0.5

    def test_clear_keeps_counters(self):
        cache = PlanCache(capacity=3)
        cache.store("f1", "od", 0, plan="a")
        cache.clear()
        assert len(cache) == 0 and cache.stats()["stores"] == 1


# ----------------------------------------------------------------------
# Database threading
# ----------------------------------------------------------------------
class TestDatabaseIntegration:
    def test_repeat_plan_is_identical_object(self):
        database = _db()
        sql = "SELECT a, b FROM t ORDER BY a"
        assert database.plan(sql) is database.plan(sql)

    def test_different_sql_same_tree_shares_plan(self):
        database = _db()
        first = database.plan("SELECT a, b FROM t ORDER BY a")
        second = database.plan("select a,  b from t order by a")
        assert second is first

    def test_modes_cached_separately(self):
        database = _db()
        sql = "SELECT a, b FROM t ORDER BY a, b"
        od_plan = database.plan(sql, optimize=True)
        fd_plan = database.plan(sql, optimize=False)
        assert od_plan is not fd_plan
        assert database.plan(sql, optimize=True) is od_plan
        assert database.plan(sql, optimize=False) is fd_plan

    def test_bypass_neither_reads_nor_fills(self):
        database = _db()
        sql = "SELECT a FROM t"
        plan = database.plan(sql, use_cache=False)
        assert plan.plan_info.cache_state == "bypass"
        assert database.plan_cache_stats()["stores"] == 0
        cached = database.plan(sql)
        assert cached is not plan

    def test_ddl_invalidates(self):
        # c is covered by no OD, so before the index the plan must sort
        database = _db()
        sql = "SELECT a, c FROM t ORDER BY c"
        before = database.plan(sql)
        assert "Sort" in before.explain()
        database.create_index("t_c", "t", ["c"])
        after = database.plan(sql)
        assert after is not before
        # the new catalog is actually used: index on c replaces the sort
        assert "IndexScan(t_c" in after.explain()
        assert "Sort" not in after.explain()

    def test_plan_cache_stats_exposed(self):
        database = _db()
        sql = "SELECT a FROM t"
        database.plan(sql)
        database.plan(sql)
        stats = database.plan_cache_stats()
        assert stats["hits"] == 1 and stats["stores"] == 1

    def test_describe_reports_cache_lines(self):
        database = _db()
        sql = "SELECT a, b FROM t ORDER BY a"
        stored = database.explain(sql, verbose=True)
        assert "plan cache: entry " in stored
        assert "served 0x from cache" in stored
        served = database.explain(sql, verbose=True)
        assert "served 1x from cache" in served
        assert "from the initial planning" in served
        bypass = database.explain(sql, verbose=True, use_cache=False)
        assert "plan cache" not in bypass  # no fingerprint → no cache line

    def test_cached_oracle_stats_preserved(self):
        """Per-entry attribution: a hit reports the oracle work that built
        the entry, not zeros."""
        database = _db()
        sql = "SELECT a, b FROM t ORDER BY a, b"
        built = database.plan(sql).plan_info.oracle.copy()
        assert built["implies_calls"] > 0
        served = database.plan(sql).plan_info.oracle
        assert served == built

    def test_reexecution_of_cached_plan_is_stable(self):
        database = _db()
        sql = "SELECT a, b FROM t WHERE a >= 5 ORDER BY a"
        first = database.execute(sql)
        second = database.execute(sql)
        assert second.plan is first.plan
        assert second.rows == first.rows

    def test_logical_memo_bounded(self):
        database = _db()
        for i in range(database._LOGICAL_MEMO_SIZE + 40):
            database._bind(f"SELECT a FROM t WHERE b = {i}")
        assert len(database._logical_memo) == database._LOGICAL_MEMO_SIZE

    def test_epoch_stamp_recorded_on_plan_info(self):
        database = _db()
        plan = database.plan("SELECT a FROM t")
        assert plan.plan_info.epoch == current_epoch()
        bump_epoch("test")
        replanned = database.plan("SELECT a FROM t")
        assert replanned is not plan
        assert replanned.plan_info.epoch == current_epoch()

"""Physical planning: plan shapes per mode and cross-mode equivalence."""
from __future__ import annotations

import pytest

from repro.engine.database import Database
from repro.engine.logical import bind
from repro.engine.sql.parser import parse
from repro.optimizer.planner import Planner
from repro.workloads.datedim import build_date_dim
from repro.workloads.taxes import build_taxes
from repro.workloads.tpcds_lite import DATE_QUERIES, build_tpcds_lite


@pytest.fixture(scope="module")
def date_db():
    db = Database()
    build_date_dim(db, days=365 * 2)
    return db


@pytest.fixture(scope="module")
def tax_db():
    db = Database()
    build_taxes(db, rows=2000)
    return db


@pytest.fixture(scope="module")
def tpcds():
    return build_tpcds_lite(days=150, sales_rows=4000)


def plan_for(db, sql, mode):
    return Planner(db, mode=mode).plan(bind(parse(sql)))


EXAMPLE1 = """
SELECT d_year, d_qoy, d_moy, COUNT(*) AS days
FROM date_dim d
GROUP BY d_year, d_qoy, d_moy
ORDER BY d_year, d_qoy, d_moy
"""


class TestExample1Plans:
    """The paper's introductory query across the three reasoning levels."""

    def test_naive_sorts_and_hashes(self, date_db):
        plan = plan_for(date_db, EXAMPLE1, "naive")
        text = plan.explain()
        assert "Sort" in text and "HashAggregate" in text and "SeqScan" in text

    def test_fd_streams_but_still_sorts(self, date_db):
        plan = plan_for(date_db, EXAMPLE1, "fd")
        text = plan.explain()
        assert "StreamAggregate" in text
        assert "Sort" in text  # FDs cannot remove DEQUARTER from the order-by

    def test_od_eliminates_the_sort(self, date_db):
        plan = plan_for(date_db, EXAMPLE1, "od")
        text = plan.explain()
        assert "StreamAggregate" in text
        assert "Sort" not in text
        assert plan.plan_info.avoided_sorts >= 1

    def test_all_modes_agree_on_rows(self, date_db):
        rows = {
            mode: plan_for(date_db, EXAMPLE1, mode).run()[0]
            for mode in ("naive", "fd", "od")
        }
        assert rows["naive"] == rows["fd"] == rows["od"]

    def test_od_work_strictly_less(self, date_db):
        work = {}
        for mode in ("naive", "fd", "od"):
            _, metrics = plan_for(date_db, EXAMPLE1, mode).run()
            work[mode] = metrics.work
        assert work["od"] < work["fd"] < work["naive"]


class TestExample5Plans:
    """Taxes: ORDER BY bracket, payable answered by the income index."""

    SQL = "SELECT income, bracket, payable FROM taxes ORDER BY bracket, payable"

    def test_od_avoids_sort(self, tax_db):
        plan = plan_for(tax_db, self.SQL, "od")
        assert "Sort" not in plan.explain()
        assert "IndexScan" in plan.explain()

    def test_fd_needs_sort(self, tax_db):
        plan = plan_for(tax_db, self.SQL, "fd")
        assert "Sort" in plan.explain()

    def test_rows_equal(self, tax_db):
        od_rows = plan_for(tax_db, self.SQL, "od").run()[0]
        fd_rows = plan_for(tax_db, self.SQL, "fd").run()[0]
        # orders may differ on ties; compare the sort keys and multisets
        assert [(r[1], r[2]) for r in od_rows] == [(r[1], r[2]) for r in fd_rows]
        assert sorted(od_rows) == sorted(fd_rows)


class TestSortReduction:
    def test_reduced_sort_keys(self, date_db):
        sql = "SELECT d_date_sk, d_year, d_qoy, d_moy FROM date_dim ORDER BY d_year, d_qoy, d_moy"
        plan = plan_for(date_db, sql, "od")
        # either the sort vanished (an index provides the order) or it runs
        # on the reduced keys [d_year, d_moy]
        text = plan.explain()
        assert "d_qoy" not in text.split("Sort")[-1] or "Sort" not in text

    def test_constant_orderby_dropped(self, tax_db):
        sql = "SELECT income FROM taxes WHERE bracket = 3 ORDER BY bracket"
        plan = plan_for(tax_db, sql, "od")
        assert "Sort" not in plan.explain()


class TestMergeJoinSelection:
    def test_merge_join_when_both_sides_sorted(self, tpcds):
        db = tpcds.database
        sql = (
            "SELECT COUNT(*) AS n FROM store_sales ss "
            "JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk"
        )
        plan = plan_for(db, sql, "od")
        # both clustered indexes provide sk order: MergeJoin without sorts
        text = plan.explain()
        if "MergeJoin" in text:
            assert "Sort" not in text

    def test_join_results_stable_across_modes(self, tpcds):
        db = tpcds.database
        sql = (
            "SELECT s_state, COUNT(*) AS n FROM store_sales ss "
            "JOIN store s ON ss.ss_store_sk = s.s_store_sk "
            "GROUP BY s_state ORDER BY s_state"
        )
        rows = {m: plan_for(db, sql, m).run()[0] for m in ("naive", "fd", "od")}
        assert rows["naive"] == rows["fd"] == rows["od"]


class TestTpcdsSweep:
    """Every rewrite-eligible query: identical answers, od never slower."""

    @pytest.mark.parametrize("qid,template", DATE_QUERIES)
    def test_query(self, tpcds, qid, template):
        db = tpcds.database
        lo, hi = tpcds.date_range(20, 25)
        sql = template.format(lo=lo, hi=hi)
        base = db.execute(sql, optimize=False)
        opt = db.execute(sql, optimize=True)
        assert sorted(base.rows) == sorted(opt.rows), qid
        assert opt.plan.plan_info.date_rewrites, f"{qid}: rewrite did not fire"
        assert opt.metrics.work < base.metrics.work, f"{qid}: no benefit"


class TestPlanInfo:
    def test_notes_record_reductions(self, date_db):
        plan = plan_for(date_db, EXAMPLE1, "od")
        info = plan.plan_info
        assert info.mode == "od"
        assert info.stream_aggregates >= 1

    def test_invalid_mode_rejected(self, date_db):
        with pytest.raises(ValueError):
            Planner(date_db, mode="quantum")

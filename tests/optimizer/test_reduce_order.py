"""ReduceOrder vs ReduceOrder++ vs the exact semantic reduction (E10)."""
from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attrs import AttrList
from repro.core.dependency import OrderEquivalence, fd, od
from repro.core.inference import ODTheory
from repro.optimizer.reduce_order import (
    minimal_groupby,
    ordering_satisfies,
    ordering_satisfies_fd,
    reduce_order_exact,
    reduce_order_fd,
    reduce_order_od,
    stream_groupable,
)

#: month orders quarter — the Example 1 theory
EX1 = ODTheory([od("moy", "qoy")])
NAMES = ("A", "B", "C", "D")
keys_st = st.lists(st.sampled_from(NAMES), max_size=4)
ods_st = st.builds(
    od,
    st.lists(st.sampled_from(NAMES), max_size=2, unique=True).map(AttrList),
    st.lists(st.sampled_from(NAMES), max_size=2, unique=True).map(AttrList),
)


class TestHeadlineExample:
    def test_fd_cannot_drop_quarter(self):
        assert reduce_order_fd(EX1, ["year", "qoy", "moy"]) == ("year", "qoy", "moy")

    def test_od_drops_quarter(self):
        assert reduce_order_od(EX1, ["year", "qoy", "moy"]) == ("year", "moy")

    def test_od_drops_quarter_after_month_too(self):
        # Eliminate handles quarter appearing after month
        assert reduce_order_od(EX1, ["year", "moy", "qoy"]) == ("year", "moy")

    def test_fd_drops_quarter_only_with_prefix_fd(self):
        theory = ODTheory([fd("moy", "qoy")])
        # quarter after month: the whole prefix {year, moy} determines qoy
        assert reduce_order_fd(theory, ["year", "moy", "qoy"]) == ("year", "moy")
        # quarter before month: FD prefix {year} does not determine qoy
        assert reduce_order_fd(theory, ["year", "qoy", "moy"]) == (
            "year", "qoy", "moy",
        )


class TestAdjacency:
    """The paper's ABD vs ABCD discussion."""

    THEORY = ODTheory([od("D", "B")])

    def test_abd_reduces(self):
        assert reduce_order_od(self.THEORY, ["A", "B", "D"]) == ("A", "D")

    def test_abcd_does_not(self):
        assert reduce_order_od(self.THEORY, ["A", "B", "C", "D"]) == (
            "A", "B", "C", "D",
        )

    def test_wider_od_reduces_abcd(self):
        wide = ODTheory([od("D", "B,C")])
        assert reduce_order_od(wide, ["A", "B", "C", "D"]) == ("A", "D")


class TestConstantsAndDuplicates:
    def test_constant_dropped_everywhere(self):
        theory = ODTheory([od("", "K")])
        assert reduce_order_fd(theory, ["K", "A", "K"]) == ("A",)
        assert reduce_order_od(theory, ["A", "K", "B"]) == ("A", "B")

    def test_duplicates_dropped(self):
        theory = ODTheory([])
        assert reduce_order_fd(theory, ["A", "B", "A"]) == ("A", "B")

    def test_empty_spec(self):
        assert reduce_order_od(ODTheory([]), []) == ()


class TestInclusionChain:
    """fd-reduction ⊆ od-reduction ⊆ exact, and all preserve equivalence."""

    @settings(max_examples=40, deadline=None)
    @given(st.lists(ods_st, max_size=2), keys_st)
    def test_chain_and_equivalence(self, premises, keys):
        theory = ODTheory(premises)
        fd_out = reduce_order_fd(theory, keys)
        od_out = reduce_order_od(theory, keys)
        exact_out = reduce_order_exact(theory, keys)
        assert len(exact_out) <= len(od_out) <= len(fd_out)
        original = AttrList(tuple(dict.fromkeys(keys)))
        for reduced in (fd_out, od_out, exact_out):
            assert theory.implies(OrderEquivalence(original, AttrList(reduced))), (
                f"reduction {reduced} not equivalent to {keys} under {premises}"
            )

    @settings(max_examples=40, deadline=None)
    @given(st.lists(ods_st, max_size=2), keys_st)
    def test_idempotent(self, premises, keys):
        theory = ODTheory(premises)
        once = reduce_order_od(theory, keys)
        assert reduce_order_od(theory, once) == once


class TestOrderingSatisfies:
    def test_od_mode_uses_oracle(self):
        assert ordering_satisfies(EX1, ["year", "moy"], ["year", "qoy", "moy"])

    def test_fd_mode_does_not(self):
        assert not ordering_satisfies_fd(EX1, ["year", "moy"], ["year", "qoy", "moy"])

    def test_fd_mode_prefix(self):
        theory = ODTheory([])
        assert ordering_satisfies_fd(theory, ["a", "b", "c"], ["a", "b"])
        assert not ordering_satisfies_fd(theory, ["a"], ["a", "b"])

    def test_fd_mode_sees_renames(self):
        theory = ODTheory([OrderEquivalence(AttrList(["t.a"]), AttrList(["a"]))])
        assert ordering_satisfies_fd(theory, ["t.a"], ["a"])

    def test_empty_required(self):
        assert ordering_satisfies(ODTheory([]), [], [])
        assert ordering_satisfies_fd(ODTheory([]), [], [])

    def test_constants_only_requirement(self):
        theory = ODTheory([od("", "K")])
        assert ordering_satisfies(theory, [], ["K"])


class TestStreamGroupable:
    def test_prefix_fd_path(self):
        theory = ODTheory([fd("moy", "qoy")])
        assert stream_groupable(
            theory, ["year", "moy", "dom"], ["year", "qoy", "moy"],
            od_reasoning=False,
        )

    def test_od_path(self):
        theory = ODTheory([OrderEquivalence(AttrList(["sk"]), AttrList(["dt"])),
                           od("dt", "year,moy")])
        assert stream_groupable(theory, ["sk"], ["year", "moy"])
        assert not stream_groupable(
            theory, ["sk"], ["year", "moy"], od_reasoning=False
        )

    def test_unordered_stream_fails(self):
        assert not stream_groupable(ODTheory([]), [], ["a"])

    def test_empty_group_always_ok(self):
        assert stream_groupable(ODTheory([]), [], [])

    def test_exact_prefix(self):
        assert stream_groupable(ODTheory([]), ["a", "b"], ["a", "b"])
        assert stream_groupable(ODTheory([]), ["a", "b"], ["b", "a"])
        assert not stream_groupable(ODTheory([]), ["a", "b"], ["b"])


class TestMinimalGroupby:
    def test_fd_drop(self):
        theory = ODTheory([fd("moy", "qoy")])
        assert minimal_groupby(theory, ["year", "qoy", "moy"]) == ("year", "moy")

    def test_partition_preserved(self):
        """Reduced grouping induces the same partition: rest determines
        dropped columns."""
        theory = ODTheory([fd("A", "B")])
        reduced = minimal_groupby(theory, ["A", "B", "C"])
        assert reduced == ("A", "C")
        from repro.core.dependency import FunctionalDependency

        assert theory.implies(FunctionalDependency(reduced, ("B",)))

"""The logical rewrite pack: rule-by-rule fire/block proofs, the
rewrites knob, EXPLAIN surfacing, post-rewrite estimates, and
hypothesis properties (on ≡ off on randomized instances).
"""
from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dependency import fd
from repro.engine.database import Database
from repro.engine.schema import Schema
from repro.engine.table import Table
from repro.engine.types import DataType
from repro.optimizer.costing import estimate_plan
from repro.workloads.rewrite_pack import REWRITE_PACK_QUERIES, build_rewrite_pack


def _multiset(rows):
    return sorted(rows, key=repr)


def _rules(database, sql, **kwargs):
    plan = database.plan(sql, use_cache=False, **kwargs)
    return [record.rule for record in plan.plan_info.rewrites]


@pytest.fixture(scope="module")
def db():
    return build_rewrite_pack(
        fact_rows=3_000, wide_rows=2_000, order_rows=3_000, customers=1_500
    )


RW = {qid: sql for qid, sql, _ in REWRITE_PACK_QUERIES}


# ----------------------------------------------------------------------
# Eager aggregation
# ----------------------------------------------------------------------
class TestEagerAggregation:
    def test_fires_on_planted_query(self, db):
        assert _rules(db, RW["RW1"]) == ["eager-agg"]

    def test_partial_stage_in_the_tree(self, db):
        text = db.plan(RW["RW1"], use_cache=False).explain()
        assert "PartialHashAggregate" in text or "PartialStreamAggregate" in text
        assert "__partial_" in text

    def test_results_match_off(self, db):
        on = db.execute(RW["RW1"])
        off = db.execute(RW["RW1"], rewrites="off")
        assert on.columns == off.columns
        assert _multiset(on.rows) == _multiset(off.rows)

    def test_blocked_by_avg(self, db):
        sql = RW["RW1"].replace("SUM(f.f_val)", "AVG(f.f_val)")
        assert _rules(db, sql) == []

    def test_blocked_by_float_sum(self):
        """A float measure blocks the split: re-associating the fold is
        not value-identical for floats."""
        database = _eager_db(float_measure=True)
        assert _rules(database, _EAGER_SQL) == []

    def test_blocked_when_group_spans_both_sides(self, db):
        sql = """
            SELECT x.x_seq, SUM(f.f_val) AS total
            FROM fact f JOIN expand x ON f.f_key = x.x_key
            GROUP BY x_seq
        """
        assert _rules(db, sql) == []

    def test_blocked_when_unprofitable(self):
        """Partial-group NDV product close to the row count: no shrink,
        no rewrite."""
        database = _eager_db(rows_per_group=1)
        assert _rules(database, _EAGER_SQL) == []

    def test_clustered_order_relaxes_the_threshold(self):
        """Between the hash (0.5) and streaming (0.9) thresholds the
        rewrite fires only when a clustered index provides the partial
        grouping order — and then plans the partial stage streaming."""
        without = _eager_db(rows_per_group=1, extra_half=True)
        assert _rules(without, _EAGER_SQL) == []
        with_index = _eager_db(
            rows_per_group=1, extra_half=True, cluster_partial_group=True
        )
        assert _rules(with_index, _EAGER_SQL) == ["eager-agg"]
        text = with_index.plan(_EAGER_SQL, use_cache=False).explain()
        assert "PartialStreamAggregate" in text


_EAGER_SQL = """
    SELECT f.f_grp, COUNT(*) AS n, SUM(f.f_val) AS total
    FROM fact f JOIN expand x ON f.f_key = x.x_key
    GROUP BY f_grp
"""


def _eager_db(
    rows_per_group=40,
    float_measure=False,
    cluster_partial_group=False,
    extra_half=False,
):
    """A tiny eager-aggregation instance with a controlled partial-group
    ratio: 8 × 10 = 80 partial groups, ``rows_per_group`` rows each
    (``extra_half`` adds one more row to half the groups, landing the
    groups/rows ratio at 2/3 — between the 0.5 and 0.9 thresholds)."""
    database = Database("eagerparam")
    measure = DataType.FLOAT if float_measure else DataType.INT
    fact = Table(
        "fact",
        Schema.of(
            ("f_grp", DataType.INT),
            ("f_key", DataType.INT),
            ("f_val", measure),
        ),
    )
    fact.load(
        (grp, key, float(seq) if float_measure else seq)
        for grp in range(8)
        for key in range(10)
        for seq in range(rows_per_group + (1 if extra_half and key < 5 else 0))
    )
    database.tables["fact"] = fact
    if cluster_partial_group:
        database.create_index(
            "fact_gk", "fact", ["f_grp", "f_key"], clustered=True
        )
    expand = Table(
        "expand", Schema.of(("x_key", DataType.INT), ("x_seq", DataType.INT))
    )
    expand.load((key, seq) for key in range(10) for seq in range(3))
    database.tables["expand"] = expand
    return database


# ----------------------------------------------------------------------
# Scan consolidation
# ----------------------------------------------------------------------
class TestScanConsolidation:
    def test_fires_on_planted_query(self, db):
        assert _rules(db, RW["RW2"]) == ["scan-consolidation"]

    def test_single_scan_with_conjoined_filters(self, db):
        text = db.plan(RW["RW2"], use_cache=False).explain()
        assert "Join" not in text, text
        # The removed alias's scan is gone (output *names* keep the
        # original b.w_b spelling — only references were renamed).
        assert "wide AS b" not in text, text
        assert "a.w_b < 700" in text or "(a.w_a >= 300 AND a.w_b < 700)" in text, text

    def test_results_match_off(self, db):
        on = db.execute(RW["RW2"])
        off = db.execute(RW["RW2"], rewrites="off")
        assert on.columns == off.columns
        assert _multiset(on.rows) == _multiset(off.rows)

    def test_blocked_by_select_star(self, db):
        sql = "SELECT * FROM wide a JOIN wide b ON a.w_id = b.w_id"
        assert _rules(db, sql) == []
        # And the un-consolidated star really does expose both copies.
        assert len(db.execute(sql).columns) == 6

    def test_blocked_without_key_proof(self, db):
        # w_a is not a declared key of wide.
        sql = """
            SELECT a.w_id, b.w_b FROM wide a
            JOIN wide b ON a.w_a = b.w_a
            WHERE a.w_id < 50
        """
        assert _rules(db, sql) == []

    def test_blocked_by_duplicate_rows(self):
        """A declared FD key that is not data-unique (duplicate rows
        satisfy any FD) must not consolidate: the self-join genuinely
        multiplies the duplicates."""
        database = Database("dupes")
        table = Table(
            "d", Schema.of(("k", DataType.INT), ("v", DataType.INT))
        )
        table.load([(1, 10), (1, 10), (2, 20)])
        database.tables["d"] = table
        table.declare(fd("k", "v"))
        sql = "SELECT a.k, b.v FROM d a JOIN d b ON a.k = b.k"
        assert _rules(database, sql) == []
        result = database.execute(sql)
        # Key 1 appears twice on each side: 4 joined rows, plus 1.
        assert len(result.rows) == 5


# ----------------------------------------------------------------------
# FD join elimination
# ----------------------------------------------------------------------
class TestJoinElimination:
    def test_fires_on_planted_query(self, db):
        assert _rules(db, RW["RW3"]) == ["join-elimination"]

    def test_dimension_gone_from_the_tree(self, db):
        text = db.plan(RW["RW3"], use_cache=False).explain()
        assert "Join" not in text, text
        assert "AS c" not in text, text  # the dimension scan is gone

    def test_results_match_off(self, db):
        on = db.execute(RW["RW3"])
        off = db.execute(RW["RW3"], rewrites="off")
        assert on.columns == off.columns
        assert _multiset(on.rows) == _multiset(off.rows)

    def test_blocked_without_declared_fk(self, db):
        # wide joins cust on a column with no declared foreign key.
        sql = """
            SELECT o.o_cust, COUNT(*) AS n FROM orders o
            JOIN wide w ON o.o_cust = w.w_id
            GROUP BY o_cust
        """
        assert "join-elimination" not in _rules(db, sql)

    def test_blocked_when_dimension_is_read(self, db):
        sql = """
            SELECT o.o_cust, c.c_name, COUNT(*) AS n FROM orders o
            JOIN cust c ON o.o_cust = c.c_id
            GROUP BY o_cust, c_name
        """
        assert "join-elimination" not in _rules(db, sql)

    def test_blocked_when_dimension_is_filtered(self, db):
        sql = """
            SELECT o.o_cust, COUNT(*) AS n FROM orders o
            JOIN cust c ON o.o_cust = c.c_id
            WHERE c.c_id < 100
            GROUP BY o_cust
        """
        assert "join-elimination" not in _rules(db, sql)

    def test_orphan_row_disarms_the_fk(self):
        """An insert that breaks containment must stop the elimination
        at the next epoch — the join really drops the orphan."""
        database = build_rewrite_pack(
            fact_rows=100, wide_rows=100, order_rows=200, customers=50
        )
        sql = RW["RW3"]
        assert _rules(database, sql) == ["join-elimination"]
        database.table("orders").insert((999_999, 1))  # no such customer
        assert "join-elimination" not in _rules(database, sql)
        on = database.execute(sql)
        off = database.execute(sql, rewrites="off")
        assert _multiset(on.rows) == _multiset(off.rows)
        assert all(row[0] != 999_999 for row in on.rows)


# ----------------------------------------------------------------------
# The knob, the cache keys, EXPLAIN, and the estimate
# ----------------------------------------------------------------------
class TestKnobAndSurfacing:
    def test_invalid_knob_rejected(self, db):
        with pytest.raises(ValueError):
            db.plan(RW["RW1"], rewrites="maybe")

    def test_off_records_nothing(self, db):
        assert _rules(db, RW["RW1"], rewrites="off") == []

    def test_regimes_cache_separately(self, db):
        db.plan_cache.clear()
        on = db.plan(RW["RW1"])
        off = db.plan(RW["RW1"], rewrites="off")
        assert on is not off
        assert db.plan(RW["RW1"]) is on
        assert db.plan(RW["RW1"], rewrites="off") is off

    @pytest.mark.parametrize(
        "qid,needle",
        [
            ("RW1", "rewrites: eager-agg(f.f_val below join)"),
            ("RW2", "rewrites: consolidated scan(wide AS b into a)"),
            ("RW3", "rewrites: eliminated join(c)"),
        ],
    )
    def test_explain_lines(self, db, qid, needle):
        assert needle in db.explain(RW[qid], verbose=True)

    @pytest.mark.parametrize("qid", sorted(RW))
    def test_estimate_prices_the_post_rewrite_tree(self, db, qid):
        """The EXPLAIN ``estimate:`` must price the final tree — the one
        that executes — not the pre-rewrite shape.  Re-estimating the
        planned operators must reproduce the recorded numbers exactly."""
        plan = db.plan(RW[qid], use_cache=False)
        recorded = plan.plan_info.estimate
        assert recorded is not None
        again = estimate_plan(db, plan)
        assert again.rows == recorded.rows
        assert again.cost == recorded.cost


# ----------------------------------------------------------------------
# Hypothesis: on ≡ off over randomized instances of each rule's shape
# ----------------------------------------------------------------------
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    data=st.lists(
        st.tuples(
            st.integers(0, 2),  # grp
            st.integers(0, 3),  # key
            st.integers(-50, 50),  # val
        ),
        min_size=1,
        max_size=80,
    ),
    expansion=st.integers(1, 4),
)
def test_eager_aggregation_on_off_property(data, expansion):
    database = Database("propeager")
    fact = Table(
        "fact",
        Schema.of(
            ("f_grp", DataType.INT),
            ("f_key", DataType.INT),
            ("f_val", DataType.INT),
        ),
    )
    fact.load(data)
    database.tables["fact"] = fact
    expand = Table(
        "expand", Schema.of(("x_key", DataType.INT), ("x_seq", DataType.INT))
    )
    expand.load((key, seq) for key in range(4) for seq in range(expansion))
    database.tables["expand"] = expand
    on = database.execute(_EAGER_SQL, use_cache=False)
    off = database.execute(_EAGER_SQL, use_cache=False, rewrites="off")
    assert on.columns == off.columns
    assert _multiset(on.rows) == _multiset(off.rows)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    values=st.lists(
        st.tuples(st.integers(0, 1000), st.integers(0, 1000)),
        min_size=1,
        max_size=60,
    ),
    lo=st.integers(0, 1000),
    hi=st.integers(0, 1000),
)
def test_scan_consolidation_on_off_property(values, lo, hi):
    database = Database("propwide")
    table = Table(
        "wide",
        Schema.of(
            ("w_id", DataType.INT),
            ("w_a", DataType.INT),
            ("w_b", DataType.INT),
        ),
    )
    table.load((i, a, b) for i, (a, b) in enumerate(values))
    database.tables["wide"] = table
    table.declare(fd("w_id", "w_a,w_b"))
    sql = f"""
        SELECT a.w_id, a.w_a, b.w_b
        FROM wide a JOIN wide b ON a.w_id = b.w_id
        WHERE a.w_a >= {lo} AND b.w_b < {hi}
    """
    on = database.execute(sql, use_cache=False)
    off = database.execute(sql, use_cache=False, rewrites="off")
    assert on.columns == off.columns
    assert _multiset(on.rows) == _multiset(off.rows)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    customers=st.integers(1, 12),
    orders=st.lists(st.integers(1, 500), min_size=0, max_size=60),
)
def test_join_elimination_on_off_property(customers, orders):
    database = Database("propfk")
    cust = Table(
        "cust", Schema.of(("c_id", DataType.INT), ("c_name", DataType.STR))
    )
    cust.load((i, f"c{i}") for i in range(1, customers + 1))
    database.tables["cust"] = cust
    cust.declare(fd("c_id", "c_name"))
    table = Table(
        "orders",
        Schema.of(("o_cust", DataType.INT), ("o_amount", DataType.INT)),
    )
    table.load(
        (1 + amount % customers, amount) for amount in orders
    )
    database.tables["orders"] = table
    database.declare_foreign_key("orders", ["o_cust"], "cust", ["c_id"])
    sql = """
        SELECT o.o_cust, COUNT(*) AS n, SUM(o.o_amount) AS amt
        FROM orders o JOIN cust c ON o.o_cust = c.c_id
        GROUP BY o_cust
    """
    on = database.execute(sql, use_cache=False)
    off = database.execute(sql, use_cache=False, rewrites="off")
    assert on.columns == off.columns
    assert _multiset(on.rows) == _multiset(off.rows)

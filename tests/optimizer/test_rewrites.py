"""Logical rewrites: pushdown correctness and the date join elimination."""
from __future__ import annotations

import datetime

import pytest

from repro.engine.logical import (
    LogicalFilter,
    LogicalJoin,
    LogicalScan,
    bind,
    explain_logical,
)
from repro.engine.sql.parser import parse
from repro.optimizer.rewrites import (
    NameResolver,
    apply_date_rewrite,
    collect_aliases,
    conjoin,
    push_filters,
    split_conjuncts,
)
from repro.workloads.tpcds_lite import build_tpcds_lite


@pytest.fixture(scope="module")
def workload():
    return build_tpcds_lite(days=120, sales_rows=3000)


def logical_for(db, sql):
    node = bind(parse(sql))
    resolver = NameResolver(db, collect_aliases(node))
    return node, resolver


class TestConjuncts:
    def test_split_nested_ands(self):
        from repro.engine.expr import BoolOp, Cmp, Col, Lit

        pred = BoolOp(
            "AND",
            [
                Cmp("=", Col("a"), Lit(1)),
                BoolOp("AND", [Cmp("=", Col("b"), Lit(2)), Cmp("=", Col("c"), Lit(3))]),
            ],
        )
        assert len(split_conjuncts(pred)) == 3

    def test_or_not_split(self):
        from repro.engine.expr import BoolOp, Cmp, Col, Lit

        pred = BoolOp("OR", [Cmp("=", Col("a"), Lit(1)), Cmp("=", Col("b"), Lit(2))])
        assert split_conjuncts(pred) == [pred]

    def test_conjoin_roundtrip(self):
        from repro.engine.expr import Cmp, Col, Lit

        a = Cmp("=", Col("a"), Lit(1))
        b = Cmp("=", Col("b"), Lit(2))
        assert conjoin([]) is None
        assert conjoin([a]) is a
        assert split_conjuncts(conjoin([a, b])) == [a, b]


class TestPushFilters:
    def test_single_alias_conjunct_reaches_scan(self, workload):
        db = workload.database
        node, resolver = logical_for(
            db,
            "SELECT ss_quantity FROM store_sales ss "
            "JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk "
            "WHERE d_year = 1999 AND ss_quantity > 5",
        )
        pushed = push_filters(node, resolver)
        text = explain_logical(pushed)
        # each conjunct sits directly over its own scan
        assert "Filter d_year = 1999" in text
        assert "Filter ss_quantity > 5" in text
        # and below the join
        join_pos = text.index("Join")
        assert text.index("d_year") > join_pos

    def test_multi_alias_residue_stays(self, workload):
        db = workload.database
        node, resolver = logical_for(
            db,
            "SELECT ss_quantity FROM store_sales ss "
            "JOIN item i ON ss.ss_item_sk = i.i_item_sk "
            "WHERE ss_quantity > i_current_price",
        )
        pushed = push_filters(node, resolver)
        text = explain_logical(pushed)
        assert text.index("Filter ss_quantity > i_current_price") < text.index("Join")

    def test_results_unchanged(self, workload):
        db = workload.database
        lo, hi = workload.date_range(10, 20)
        sql = (
            "SELECT SUM(ss_quantity) AS q FROM store_sales ss "
            "JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk "
            f"WHERE d.d_date BETWEEN DATE '{lo}' AND DATE '{hi}' AND ss_store_sk = 2"
        )
        naive = db.execute(sql, optimize=False)
        optimized = db.execute(sql, optimize=True)
        assert naive.rows == optimized.rows


class TestDateRewrite:
    def rewrite(self, workload, sql):
        db = workload.database
        node, resolver = logical_for(db, sql)
        pushed = push_filters(node, resolver)
        return apply_date_rewrite(db, pushed, resolver)

    def test_applies_on_eligible_query(self, workload):
        lo, hi = workload.date_range(5, 30)
        rewritten, applied = self.rewrite(
            workload,
            "SELECT SUM(ss_sales_price) AS r FROM store_sales ss "
            "JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk "
            f"WHERE d.d_date BETWEEN DATE '{lo}' AND DATE '{hi}'",
        )
        assert len(applied) == 1
        record = applied[0]
        assert record.dim_table == "date_dim"
        assert record.surrogate_low is not None
        assert "Join" not in explain_logical(rewritten)
        assert "two probes" in record.describe()

    def test_probe_values_correct(self, workload):
        lo, hi = workload.date_range(5, 30)
        _, applied = self.rewrite(
            workload,
            "SELECT COUNT(*) AS n FROM store_sales ss "
            "JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk "
            f"WHERE d.d_date BETWEEN DATE '{lo}' AND DATE '{hi}'",
        )
        record = applied[0]
        table = workload.database.table("date_dim")
        lo_d = datetime.date.fromisoformat(lo)
        hi_d = datetime.date.fromisoformat(hi)
        qualifying = [
            row[0] for row in table.rows if lo_d <= row[1] <= hi_d
        ]
        assert record.surrogate_low == min(qualifying)
        assert record.surrogate_high == max(qualifying)

    def test_skipped_when_dim_columns_used(self, workload):
        lo, hi = workload.date_range(5, 30)
        _, applied = self.rewrite(
            workload,
            "SELECT d.d_year, COUNT(*) AS n FROM store_sales ss "
            "JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk "
            f"WHERE d.d_date BETWEEN DATE '{lo}' AND DATE '{hi}' "
            "GROUP BY d.d_year",
        )
        assert applied == []

    def test_skipped_without_od_guarantee(self, workload):
        """Joining through the item dimension (no [pk] <-> [price] OD) must
        not trigger the rewrite."""
        _, applied = self.rewrite(
            workload,
            "SELECT COUNT(*) AS n FROM store_sales ss "
            "JOIN item i ON ss.ss_item_sk = i.i_item_sk "
            "WHERE i_current_price BETWEEN 10 AND 20",
        )
        assert applied == []

    def test_skipped_without_closed_range(self, workload):
        _, applied = self.rewrite(
            workload,
            "SELECT COUNT(*) AS n FROM store_sales ss "
            "JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk "
            "WHERE d_year = 1999 AND d_moy = 2",
        )
        # d_year/d_moy are not range-closed on a column with the OD guarantee
        assert applied == []

    def test_empty_range_yields_false_filter(self, workload):
        beyond = (workload.start + datetime.timedelta(days=10_000)).isoformat()
        later = (workload.start + datetime.timedelta(days=10_030)).isoformat()
        rewritten, applied = self.rewrite(
            workload,
            "SELECT COUNT(*) AS n FROM store_sales ss "
            "JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk "
            f"WHERE d.d_date BETWEEN DATE '{beyond}' AND DATE '{later}'",
        )
        assert len(applied) == 1
        assert applied[0].surrogate_low is None
        assert "False" in explain_logical(rewritten)

    def test_ge_le_pair_accepted(self, workload):
        lo, hi = workload.date_range(5, 30)
        _, applied = self.rewrite(
            workload,
            "SELECT COUNT(*) AS n FROM store_sales ss "
            "JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk "
            f"WHERE d.d_date >= DATE '{lo}' AND d.d_date <= DATE '{hi}'",
        )
        assert len(applied) == 1

    def test_rewritten_results_match(self, workload):
        db = workload.database
        lo, hi = workload.date_range(5, 30)
        sql = (
            "SELECT ss_store_sk, SUM(ss_quantity) AS q FROM store_sales ss "
            "JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk "
            f"WHERE d.d_date BETWEEN DATE '{lo}' AND DATE '{hi}' "
            "GROUP BY ss_store_sk ORDER BY ss_store_sk"
        )
        assert db.execute(sql, optimize=False).rows == db.execute(sql, optimize=True).rows

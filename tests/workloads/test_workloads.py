"""Workload generators: declared dependencies must hold in generated data."""
from __future__ import annotations

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dependency import od
from repro.core.satisfaction import satisfies
from repro.engine.database import Database
from repro.workloads.datedim import (
    FIGURE2_PATHS,
    build_date_dim,
    date_dim_ods,
    generate_date_dim,
)
from repro.workloads.random_instances import (
    random_od_set,
    random_relation,
    relation_satisfying,
)
from repro.workloads.snowflake import SNOWFLAKE_QUERIES, build_snowflake
from repro.workloads.taxes import build_taxes, generate_taxes, tax_of
from repro.workloads.tpcds_lite import build_tpcds_lite


class TestDateDim:
    def test_row_count(self):
        assert len(generate_date_dim(days=100)) == 100

    def test_surrogates_ascend_with_dates(self):
        table = generate_date_dim(days=50)
        sks = table.column_values("d_date_sk")
        dates = table.column_values("d_date")
        assert sks == sorted(sks)
        assert dates == sorted(dates)

    def test_declared_ods_hold_across_leap_year(self):
        table = generate_date_dim(
            start=datetime.date(1999, 6, 1), days=365 * 3
        )
        relation = table.as_relation()
        for statement in date_dim_ods():
            assert satisfies(relation, statement), str(statement)

    def test_figure2_paths_are_ods(self):
        table = generate_date_dim(days=800)
        relation = table.as_relation()
        for path in FIGURE2_PATHS:
            assert satisfies(relation, od("d_date", list(path)))

    def test_month_name_trap(self):
        """d_moy determines d_month_name but does NOT order it (Example 1)."""
        from repro.core.dependency import fd

        relation = generate_date_dim(days=365).as_relation()
        assert satisfies(relation, fd("d_moy", "d_month_name"))
        assert not satisfies(relation, od("d_moy", "d_month_name"))

    def test_build_declares_and_indexes(self):
        db = Database()
        build_date_dim(db, days=60)
        assert db.table("date_dim").constraints
        assert len(db.indexes_on("date_dim")) == 3


class TestTaxes:
    def test_generated_rows_schedule_consistent(self):
        for row in generate_taxes(rows=200):
            _, income, bracket, rate, payable = row
            assert (bracket, rate, payable) == (*tax_of(income)[:2], tax_of(income)[2])

    @given(st.integers(0, 1_000_000), st.integers(0, 1_000_000))
    @settings(max_examples=200)
    def test_tax_of_monotone(self, a, b):
        """The Example 5 premise: brackets and payable rise with income."""
        lo, hi = min(a, b), max(a, b)
        b_lo, r_lo, p_lo = tax_of(lo)
        b_hi, r_hi, p_hi = tax_of(hi)
        assert b_lo <= b_hi and r_lo <= r_hi and p_lo <= p_hi

    def test_declared_ods_hold(self):
        db = Database()
        table = build_taxes(db, rows=1500)
        relation = table.as_relation()
        for statement in table.constraints:
            assert satisfies(relation, statement)


class TestTpcdsLite:
    def test_build_shape(self):
        workload = build_tpcds_lite(days=60, sales_rows=500, items=20, stores=4)
        db = workload.database
        assert len(db.table("store_sales")) == 500
        assert len(db.table("date_dim")) == 60
        assert len(db.table("item")) == 20

    def test_fact_dates_within_dimension(self):
        workload = build_tpcds_lite(days=60, sales_rows=300)
        sks = set(workload.database.table("date_dim").column_values("d_date_sk"))
        for sk in workload.database.table("store_sales").column_values(
            "ss_sold_date_sk"
        ):
            assert sk in sks

    def test_fact_clustered_by_date(self):
        workload = build_tpcds_lite(days=60, sales_rows=300)
        values = workload.database.table("store_sales").column_values(
            "ss_sold_date_sk"
        )
        assert values == sorted(values)

    def test_date_range_helper(self):
        workload = build_tpcds_lite(days=60, sales_rows=10)
        lo, hi = workload.date_range(0, 10)
        assert lo == workload.start.isoformat()
        assert datetime.date.fromisoformat(hi) == workload.start + datetime.timedelta(days=9)

    def test_deterministic_given_seed(self):
        a = build_tpcds_lite(days=30, sales_rows=100, seed=9)
        b = build_tpcds_lite(days=30, sales_rows=100, seed=9)
        assert a.database.table("store_sales").rows == b.database.table("store_sales").rows


class TestSnowflake:
    def test_build_shape(self):
        workload = build_snowflake(
            days=60, sales_rows=400, items=30, brands=10, stores=8, regions=4
        )
        db = workload.database
        assert len(db.table("sales")) == 400
        assert len(db.table("item")) == 30
        assert len(db.table("brand")) == 10
        assert len(db.table("store")) == 8
        assert len(db.table("region")) == 4
        assert len(db.table("date_dim")) == 60

    def test_foreign_keys_resolve(self):
        workload = build_snowflake(days=40, sales_rows=200, items=20)
        db = workload.database
        brands = set(db.table("brand").column_values("b_brand_sk"))
        for brand_sk in db.table("item").column_values("i_brand_sk"):
            assert brand_sk in brands
        regions = set(db.table("region").column_values("r_region_sk"))
        for region_sk in db.table("store").column_values("st_region_sk"):
            assert region_sk in regions
        sks = set(db.table("date_dim").column_values("d_date_sk"))
        for sk in db.table("sales").column_values("f_date_sk"):
            assert sk in sks

    def test_fact_clustered_by_date(self):
        workload = build_snowflake(days=40, sales_rows=200)
        values = workload.database.table("sales").column_values("f_date_sk")
        assert values == sorted(values)

    def test_templates_format_and_parse(self):
        from repro.engine.logical import bind
        from repro.engine.sql.parser import parse

        workload = build_snowflake(days=40, sales_rows=50)
        lo, hi = workload.date_range(5, 10)
        for qid, template, keys in SNOWFLAKE_QUERIES:
            logical = bind(parse(template.format(lo=lo, hi=hi)))
            assert logical is not None, qid

    def test_deterministic_given_seed(self):
        a = build_snowflake(days=30, sales_rows=100, seed=5)
        b = build_snowflake(days=30, sales_rows=100, seed=5)
        assert a.database.table("sales").rows == b.database.table("sales").rows


class TestRandomInstances:
    def test_random_relation_shape(self):
        r = random_relation(("A", "B"), rows=10, rng=1)
        assert len(r.rows) == 10 and len(r.attributes) == 2

    def test_random_od_set_reproducible(self):
        assert random_od_set(("A", "B"), 3, rng=5) == random_od_set(("A", "B"), 3, rng=5)

    def test_relation_satisfying(self):
        statements = [od("A", "B")]
        r = relation_satisfying(statements, ("A", "B"), rows=12, rng=2)
        assert r is not None
        assert satisfies(r, statements[0])
